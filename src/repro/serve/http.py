"""Minimal asyncio HTTP/1.1 server for the serving tier.

No web framework: requests are parsed from the stream with stdlib
``asyncio`` and answered through an app callback, which keeps the
serving tier dependency-free (ISSUE: stdlib ``asyncio`` + ``http``
only).  Supported surface is exactly what the API needs — GET/POST,
Content-Length bodies, keep-alive — with hard limits on line, header
and body sizes so a misbehaving client cannot balloon memory.
"""

from __future__ import annotations

import asyncio
import json
import threading
from dataclasses import dataclass, field
from http import HTTPStatus
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.obs.logging import get_logger

_log = get_logger("serve.http")

#: Request-line / header-line size cap, bytes.
MAX_LINE = 8192
#: Header count cap per request.
MAX_HEADERS = 64
#: Request-body size cap, bytes (solve/project payloads are tiny).
MAX_BODY = 1 << 20

SERVER_NAME = "repro-serve"


@dataclass(frozen=True)
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes

    def json(self):
        """Decode the body as JSON; empty body decodes to ``{}``."""
        if not self.body:
            return {}
        return json.loads(self.body.decode("utf-8"))


@dataclass(frozen=True)
class HttpResponse:
    """One response; helpers build the common shapes."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, payload, status: int = 200) -> "HttpResponse":
        # allow_nan=False would raise on the projection's legitimate
        # infinities; the app converts those to None before this point,
        # so strict JSON here is a guard, not a limitation.
        body = json.dumps(payload, allow_nan=False).encode("utf-8")
        return cls(status=status, body=body)

    @classmethod
    def text(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(
            status=status,
            body=text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    @classmethod
    def error(cls, status: int, message: str) -> "HttpResponse":
        return cls.json({"error": message}, status=status)


class BadRequest(Exception):
    """Malformed HTTP that still deserves a 400 answer."""


async def _read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # connection closed between requests
        raise BadRequest("truncated request line") from None
    except asyncio.LimitOverrunError:
        raise BadRequest("request line too long") from None
    if len(line) > MAX_LINE:
        raise BadRequest("request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest("malformed request line")
    method, target, version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise BadRequest("truncated headers") from None
        if len(line) > MAX_LINE:
            raise BadRequest("header line too long")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise BadRequest("too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest("malformed header")
        headers[name.strip().lower()] = value.strip()

    length_raw = headers.get("content-length", "0")
    try:
        length = int(length_raw)
    except ValueError:
        raise BadRequest(f"bad Content-Length {length_raw!r}") from None
    if length < 0 or length > MAX_BODY:
        raise BadRequest("body too large")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    # keep-alive is the HTTP/1.1 default; HTTP/1.0 must opt in
    connection = headers.get("connection", "").lower()
    keep_alive = (
        connection != "close"
        if version == "HTTP/1.1"
        else connection == "keep-alive"
    )
    headers["_keep_alive"] = "1" if keep_alive else "0"
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def _render(response: HttpResponse, *, keep_alive: bool) -> bytes:
    reason = HTTPStatus(response.status).phrase
    head = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Server: {SERVER_NAME}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    head.extend(f"{k}: {v}" for k, v in response.headers.items())
    return "\r\n".join(head).encode("latin-1") + b"\r\n\r\n" + response.body


class ServeServer:
    """The listening side: accepts connections, drives the app.

    ``app`` is any ``async (HttpRequest) -> HttpResponse`` callable —
    in production :meth:`repro.serve.app.ServeApp.handle`.  ``port=0``
    binds an ephemeral port (tests); the bound port is ``self.port``
    after :meth:`start`.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8030) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[asyncio.StreamWriter] = set()

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("listening", host=self.host, port=self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            _log.info("stopped", host=self.host, port=self.port)
        # nudge idle keep-alive connections: closing the transport EOFs
        # their parked read, so handlers unwind on their normal path
        # instead of needing to be cancelled
        for writer in list(self._connections):
            writer.close()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except BadRequest as exc:
                    _log.warning("bad request", error=str(exc))
                    writer.write(
                        _render(
                            HttpResponse.error(400, str(exc)), keep_alive=False
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                keep_alive = request.headers.get("_keep_alive") == "1"
                try:
                    response = await self.app(request)
                except Exception as exc:  # app bug: answer, don't drop
                    response = HttpResponse.error(
                        500, f"{type(exc).__name__}: {exc}"
                    )
                writer.write(_render(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-exchange
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class BackgroundServer:
    """A :class:`ServeServer` on its own thread + event loop.

    What the test suite and the serving benchmark use to stand a real
    server up in-process: ``start()`` blocks until the socket is bound
    (``port=0`` for an ephemeral port) and returns the port; ``stop()``
    shuts the loop down and joins the thread.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self.server = ServeServer(app, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> int:
        if self._thread is not None:
            raise RuntimeError("already started")
        self._loop = asyncio.new_event_loop()

        def _run() -> None:
            asyncio.set_event_loop(self._loop)
            self._loop.run_until_complete(self.server.start())
            self._ready.set()
            self._loop.run_forever()
            self._loop.run_until_complete(self.server.stop())
            # stop() EOF'd every open connection, so the keep-alive
            # handlers unwind on their own; give them a moment, then
            # cancel true stragglers so the loop closes clean
            pending = asyncio.all_tasks(self._loop)
            if pending:
                self._loop.run_until_complete(
                    asyncio.wait(pending, timeout=5.0)
                )
            for task in asyncio.all_tasks(self._loop):
                task.cancel()
            pending = asyncio.all_tasks(self._loop)
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self._loop.close()

        self._thread = threading.Thread(
            target=_run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server did not come up within 30s")
        return self.server.port

    def stop(self) -> None:
        if self._thread is None:
            return
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
