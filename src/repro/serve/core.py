"""The serving core: caching, coalescing, batching, worker offload.

:class:`ServingCore` sits between the HTTP layer and the execution
engines and is deliberately socket-free so every behaviour is
unit-testable with plain ``asyncio`` (see tests/serve/test_core.py).
A solve request walks four tiers, cheapest first:

1. **LRU hot-cache** — an in-memory ``{cell key: SolveReport}`` map
   bounded at ``cache_size`` entries.  Hits cost a dict lookup; no
   store I/O, no deserialization.
2. **Coalescer** — identical cells already being resolved share one
   in-flight future, so a burst of equal requests costs one
   computation (and one store lookup) total.
3. **ResultStore** — the content-addressed on-disk store, consulted in
   a worker thread so index/payload I/O never blocks the event loop.
   Store semantics are unchanged: a hit is only ever served for a cell
   that would reproduce bit-identically.
4. **Compute** — a miss everywhere.  Simulation-engine cells are
   offloaded to a bounded thread pool (CPU-bound numerics must not
   starve the accept loop); analytic-engine cells are *micro-batched*:
   requests arriving within ``batch_window_s`` that share an
   :class:`~repro.harness.experiment.ExperimentConfig` are evaluated on
   one :class:`~repro.harness.experiment.Experiment`, so the fault-free
   baseline and problem setup are paid once per group instead of once
   per request.

Every path produces numbers bit-identical to a direct
``Experiment(config).run(scheme)`` call: runs are deterministic, the
batch path shares the exact same Experiment code, and cache tiers only
ever replay previously produced reports.

Consistency vs. the store: the core is read-through and write-through
(computed cells are persisted unless the core is store-less), and the
LRU is keyed by the same content hash as the store, so a cached entry
can never be served for a config that would not reproduce it.  The LRU
is *not* invalidated by external writers replacing a key's payload —
by construction a key identifies one deterministic result, so a
replacement is byte-equal anyway.
"""

from __future__ import annotations

import asyncio
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

from repro.campaign.spec import CampaignCell
from repro.campaign.store import ResultStore, cell_key
from repro.core.report import SolveReport
from repro.harness.experiment import Experiment, ExperimentConfig
from repro.obs.logging import current_request_id, get_logger
from repro.obs.metrics import MetricsRegistry

_log = get_logger("serve.core")

#: Default bound on the in-memory hot-cache (reports, not bytes).
DEFAULT_CACHE_SIZE = 256

#: Default worker threads for CPU-bound cells and store I/O.
DEFAULT_WORKERS = 2

#: Default micro-batch collection window, seconds.  Small enough to be
#: invisible next to a solve, large enough to group a request burst.
DEFAULT_BATCH_WINDOW_S = 0.002

#: Hard cap on cells per micro-batch; a full group drains immediately.
DEFAULT_BATCH_MAX = 32

#: Engines whose cells are cheap enough to micro-batch on one
#: Experiment; everything else goes through the worker pool.
BATCHED_ENGINES = ("analytic",)

#: Buckets for the batch-size histogram (cells per drained batch).
_BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)


def compute_cell(cell: CampaignCell) -> SolveReport:
    """Run one cell from scratch — the serving tier's unit of compute.

    Identical numbers to :func:`repro.campaign.runner.execute_cell`
    (both build an :class:`Experiment` from the cell's config and run
    the scheme); kept separate so the core depends only on the harness.
    """
    return Experiment(cell.config).run(cell.scheme)


def compute_group(
    config: ExperimentConfig, schemes: list[str]
) -> dict[str, SolveReport]:
    """Evaluate several schemes of one config on a shared Experiment.

    The micro-batcher's unit of compute: the fault-free baseline (the
    one numeric solve the analytic engine needs) and the problem setup
    are computed once for the whole group.  Determinism makes the
    result per scheme bit-identical to a lone :func:`compute_cell`.
    """
    experiment = Experiment(config)
    return {scheme: experiment.run(scheme) for scheme in schemes}


@dataclass(frozen=True)
class SolveOutcome:
    """One answered solve request, with cache provenance."""

    report: SolveReport
    key: str
    #: Which tier answered: "lru", "coalesced", "store" or "computed".
    source: str
    elapsed_s: float


def annotate_request_ids(report: SolveReport, request_ids: list[str]) -> None:
    """Stamp request ids onto a traced report's root ``solve`` span.

    The comma-joined id list rides as a span attr, so it persists with
    the stored telemetry and round-trips through the JSONL trace export
    — ``GET /v1/reports/<key>`` resolves a request id straight to the
    span tree that served it.  Untraced reports are left byte-identical
    to a direct engine run (the serving tier's bit-identity contract).
    """
    details = getattr(report, "details", None)
    tel = details.get("telemetry") if isinstance(details, dict) else None
    if tel is None or not request_ids:
        return
    spans = tel.spans.spans
    for i, s in enumerate(spans):
        if s.name == "solve" and s.depth == 0:
            attrs = dict(s.attrs)
            attrs["request_ids"] = ",".join(request_ids)
            spans[i] = replace(s, attrs=tuple(sorted(attrs.items())))
            return


class ServingCore:
    """Caching/coalescing/batching layer over the execution engines.

    All public coroutines must run on a single event loop; the core
    touches its metrics registry and caches only from that loop, which
    is what keeps the deterministic :class:`MetricsRegistry` safe
    without locks.  Blocking work (store I/O, solves) runs on the
    bounded ``workers`` thread pool.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int = DEFAULT_WORKERS,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        batch_max: int = DEFAULT_BATCH_MAX,
        metrics: MetricsRegistry | None = None,
        latency_buckets: tuple[float, ...] | None = None,
        compute=compute_cell,
        compute_batch=compute_group,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be >= 0")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        self.store = store
        self.cache_size = cache_size
        self.batch_window_s = batch_window_s
        self.batch_max = batch_max
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Override for the serve latency histograms' bucket bounds
        #: (``repro serve --latency-buckets``); None keeps the default.
        self.latency_buckets = (
            tuple(sorted(float(b) for b in latency_buckets))
            if latency_buckets
            else None
        )
        self._compute = compute
        self._compute_batch = compute_batch
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lru: OrderedDict[str, SolveReport] = OrderedDict()
        self._inflight: dict[str, asyncio.Future] = {}
        # request ids riding each in-flight key: leader first, then every
        # coalesced waiter — the computed trace is annotated with all of
        # them, so shared compute still resolves from every id.
        self._inflight_ids: dict[str, list[str]] = {}
        # pending micro-batches: config -> list of (scheme, future)
        self._pending: dict[ExperimentConfig, list[tuple[str, asyncio.Future]]] = {}

    # -- LRU tier ------------------------------------------------------
    def _lru_get(self, key: str) -> SolveReport | None:
        report = self._lru.get(key)
        if report is not None:
            self._lru.move_to_end(key)
        return report

    def _lru_put(self, key: str, report: SolveReport) -> None:
        if self.cache_size == 0:
            return
        self._lru[key] = report
        self._lru.move_to_end(key)
        while len(self._lru) > self.cache_size:
            self._lru.popitem(last=False)
        self.metrics.gauge("serve_lru_entries").set(len(self._lru))

    # -- micro-batcher -------------------------------------------------
    def _enqueue_batch(self, cell: CampaignCell) -> asyncio.Future:
        """Queue one analytic cell; its group drains after the window."""
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        group = self._pending.setdefault(cell.config, [])
        group.append((cell.scheme, future))
        if len(group) >= self.batch_max:
            self._drain_group(cell.config)
        elif len(group) == 1:
            loop.call_later(
                self.batch_window_s, self._drain_group, cell.config
            )
        return future

    def _drain_group(self, config: ExperimentConfig) -> None:
        """Ship one config's pending cells to the pool as a single job."""
        group = self._pending.pop(config, None)
        if not group:
            return  # already drained by the batch_max trigger
        schemes = [scheme for scheme, _ in group]
        self.metrics.counter("serve_batches").inc()
        self.metrics.histogram(
            "serve_batch_size", buckets=_BATCH_SIZE_BUCKETS
        ).observe(len(schemes))
        loop = asyncio.get_running_loop()
        job = loop.run_in_executor(
            self._executor, self._compute_batch, config, schemes
        )

        def _resolve(task: asyncio.Future) -> None:
            exc = task.exception()
            for scheme, future in group:
                if future.done():
                    continue
                if exc is not None:
                    future.set_exception(exc)
                else:
                    future.set_result(task.result()[scheme])

        job.add_done_callback(_resolve)

    async def _compute_async(self, cell: CampaignCell) -> SolveReport:
        """Compute one cell off-loop: batched (analytic) or pooled."""
        if cell.config.engine in BATCHED_ENGINES:
            return await self._enqueue_batch(cell)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, self._compute, cell)

    # -- the main entry point ------------------------------------------
    async def solve_cell(self, cell: CampaignCell) -> SolveOutcome:
        """Answer one (config, scheme) cell through the cache tiers."""
        t0 = time.perf_counter()
        key = cell_key(cell)
        engine = cell.config.engine
        request_id = current_request_id()

        def _done(report: SolveReport, source: str) -> SolveOutcome:
            elapsed = time.perf_counter() - t0
            self.metrics.counter(
                "serve_solve", source=source, engine=engine
            ).inc()
            hist_kwargs = (
                {"buckets": self.latency_buckets} if self.latency_buckets else {}
            )
            self.metrics.histogram(
                "serve_solve_latency_s", source=source, **hist_kwargs
            ).observe(elapsed)
            _log.debug(
                "solve answered",
                key=key,
                scheme=cell.scheme,
                engine=engine,
                source=source,
                elapsed_ms=round(elapsed * 1e3, 3),
            )
            return SolveOutcome(
                report=report, key=key, source=source, elapsed_s=elapsed
            )

        report = self._lru_get(key)
        if report is not None:
            return _done(report, "lru")

        inflight = self._inflight.get(key)
        if inflight is not None:
            if request_id is not None:
                self._inflight_ids.setdefault(key, []).append(request_id)
            return _done(await asyncio.shield(inflight), "coalesced")

        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._inflight_ids[key] = [request_id] if request_id else []
        self.metrics.gauge("serve_inflight").set(len(self._inflight))
        try:
            source = "store"
            report = None
            if self.store is not None:
                report = await loop.run_in_executor(
                    self._executor, self.store.get, cell
                )
            if report is None:
                source = "computed"
                compute_t0 = time.perf_counter()
                report = await self._compute_async(cell)
                # stamp every rider (leader + coalesced waiters so far)
                # onto the trace before it is persisted or cached
                annotate_request_ids(report, self._inflight_ids.get(key, []))
                if self.store is not None:
                    await loop.run_in_executor(
                        self._executor,
                        lambda: self.store.put(
                            cell,
                            report,
                            elapsed_s=time.perf_counter() - compute_t0,
                        ),
                    )
            self._lru_put(key, report)
            future.set_result(report)
        except Exception as exc:
            self.metrics.counter("serve_errors", stage="solve").inc()
            _log.warning(
                "solve failed",
                key=key,
                scheme=cell.scheme,
                engine=engine,
                error=f"{type(exc).__name__}: {exc}",
            )
            future.set_exception(exc)
            future.exception()  # mark retrieved: waiters rethrow their own
            raise
        finally:
            self._inflight.pop(key, None)
            self._inflight_ids.pop(key, None)
            self.metrics.gauge("serve_inflight").set(len(self._inflight))
        return _done(report, source)

    # -- introspection / lifecycle -------------------------------------
    def cache_stats(self) -> dict:
        """Serving-side cache/batch counters (JSON-shaped)."""
        snap = self.metrics.snapshot()
        sources = {
            label: int(value)
            for series, value in snap["counters"].items()
            for name, label in [_source_of(series)]
            if name == "serve_solve"
        }
        return {
            "lru_entries": len(self._lru),
            "lru_capacity": self.cache_size,
            "inflight": len(self._inflight),
            "pending_batches": len(self._pending),
            "solved_by_source": sources,
        }

    async def drain(self) -> None:
        """Wait out every in-flight request (tests and shutdown)."""
        while self._inflight or self._pending:
            futures = list(self._inflight.values())
            for group in self._pending.values():
                futures.extend(f for _, f in group)
            if futures:
                await asyncio.gather(*futures, return_exceptions=True)
            else:  # pending group whose timer has not fired yet
                await asyncio.sleep(self.batch_window_s)

    def close(self) -> None:
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ServingCore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _source_of(series: str) -> tuple[str, str]:
    """(metric name, source label) of a serve_solve series."""
    name, labels = MetricsRegistry._parse_series(series)
    return name, labels.get("source", "")
