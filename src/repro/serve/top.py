"""``repro top``: a live terminal dashboard over the serving tier.

Pure stdlib: one keep-alive :class:`~repro.serve.client.ServeClient`
polls ``/healthz``, ``/metrics/history`` and ``/slo``; everything on
screen is *derived from the sampled history* — request and error rates
from counter deltas, latency percentiles from histogram-bucket deltas,
batch sizes from the batch histogram — so the dashboard shows the same
numbers ``repro doctor --history`` would compute from the saved
artifact.  The live loop repaints with plain ANSI (clear + home);
``--once`` prints a single un-escaped snapshot, which is what CI
captures as the dashboard artifact.
"""

from __future__ import annotations

import time

from repro.obs.history import (
    MetricsHistory,
    counter_delta,
    histogram_delta,
    percentile_from_buckets,
)
from repro.obs.term import CLEAR as _CLEAR
from repro.obs.term import fmt_ms as _fmt_ms
from repro.serve.client import ServeClient

#: Default repaint interval, seconds.
DEFAULT_REFRESH_S = 2.0

#: Default trailing window the rates/percentiles are computed over.
DEFAULT_WINDOW_S = 60.0


def _series_name(series: str) -> str:
    return series.partition("{")[0]


def _source_counts(snapshot: dict) -> dict[str, int]:
    """serve_solve totals by cache tier, from one metrics snapshot."""
    from repro.obs.metrics import MetricsRegistry

    out: dict[str, int] = {}
    for series, value in snapshot.get("counters", {}).items():
        name, labels = MetricsRegistry._parse_series(series)
        if name == "serve_solve":
            source = labels.get("source", "")
            out[source] = out.get(source, 0) + int(value)
    return out


def render(
    health: dict,
    history: MetricsHistory,
    slo_doc: dict,
    *,
    window_s: float = DEFAULT_WINDOW_S,
) -> str:
    """One dashboard frame as plain text (no escape codes)."""
    lines: list[str] = []
    uptime = health.get("uptime_s", 0.0)
    lines.append(
        f"repro top — server up {uptime:.0f}s, engines: "
        f"{', '.join(health.get('engines', []))}, "
        f"store: {'yes' if health.get('store') else 'no'} "
        f"— window {window_s:g}s, {len(history)} samples"
    )
    lines.append("")

    # traffic: rates from counter deltas over the window
    requests, dt = counter_delta(
        history, lambda s: _series_name(s) == "serve_requests", window_s
    )
    errors, _ = counter_delta(
        history,
        lambda s: _series_name(s) == "serve_requests" and "status=5" in s,
        window_s,
    )
    rate = requests / dt if dt > 0 else 0.0
    err_pct = 100.0 * errors / requests if requests > 0 else 0.0
    lines.append(
        f"  traffic   {rate:8.1f} req/s   {int(requests):6d} reqs "
        f"  {err_pct:5.2f}% 5xx"
    )

    # latency percentiles from request-histogram bucket deltas
    delta = histogram_delta(
        history, lambda s: _series_name(s) == "serve_request_latency_s", window_s
    )
    if delta is not None and delta["n"] > 0:
        p50 = percentile_from_buckets(delta["buckets"], delta["counts"], 0.50)
        p90 = percentile_from_buckets(delta["buckets"], delta["counts"], 0.90)
        p99 = percentile_from_buckets(delta["buckets"], delta["counts"], 0.99)
        lines.append(
            f"  latency   p50 ≤{_fmt_ms(p50)}ms   p90 ≤{_fmt_ms(p90)}ms "
            f"  p99 ≤{_fmt_ms(p99)}ms   ({delta['n']} obs)"
        )
    else:
        lines.append("  latency   (no observations in window)")

    # cache tiers: lifetime solve totals by source + live gauges
    latest = history.latest()
    snapshot = latest.metrics if latest is not None else {}
    sources = _source_counts(snapshot)
    total = sum(sources.values())
    served_cached = sum(
        sources.get(s, 0) for s in ("lru", "coalesced", "store")
    )
    hit_pct = 100.0 * served_cached / total if total > 0 else 0.0
    parts = "  ".join(
        f"{name}={sources.get(name, 0)}"
        for name in ("lru", "coalesced", "store", "computed")
    )
    lines.append(f"  cache     {hit_pct:5.1f}% hit   {parts}")

    gauges = snapshot.get("gauges", {})
    batch = histogram_delta(
        history, lambda s: _series_name(s) == "serve_batch_size", window_s
    )
    batch_mean = (
        batch["total"] / batch["n"] if batch is not None and batch["n"] else 0.0
    )
    lines.append(
        f"  core      inflight={int(gauges.get('serve_inflight', 0))} "
        f"  lru_entries={int(gauges.get('serve_lru_entries', 0))} "
        f"  batch_mean={batch_mean:.2f}"
    )
    lines.append("")

    # SLO burn
    firing_any = bool(slo_doc.get("firing"))
    lines.append(f"  SLO burn  {'FIRING' if firing_any else 'ok'}")
    for status in slo_doc.get("slos", []):
        for speed in ("fast", "slow"):
            win = status.get(speed, {})
            mark = "!!" if win.get("firing") else "  "
            lines.append(
                f"   {mark} {status.get('name', '?'):<13}"
                f"{speed:<5} {win.get('window_s', 0):5.0f}s  "
                f"burn {win.get('burn_rate', 0.0):7.2f}x "
                f"(alert ≥{win.get('threshold', 0.0):g}x, "
                f"{win.get('requests', 0)} reqs)"
            )
    return "\n".join(lines)


def fetch_frame(client: ServeClient, window_s: float) -> tuple[dict, MetricsHistory, dict]:
    """Pull one frame's inputs from a live server."""
    health = client.health()
    history = MetricsHistory.from_doc(client.metrics_history())
    slo_doc = client.slo()
    return health, history, slo_doc


def run_top(
    host: str,
    port: int,
    *,
    interval_s: float = DEFAULT_REFRESH_S,
    window_s: float = DEFAULT_WINDOW_S,
    once: bool = False,
    iterations: int | None = None,
    out=None,
) -> int:
    """Drive the dashboard; returns a process exit code.

    ``once`` prints a single plain frame (CI snapshot mode);
    ``iterations`` bounds the live loop (tests); the default live loop
    runs until interrupted.
    """
    import sys

    stream = sys.stdout if out is None else out
    done = 0
    with ServeClient(host, port) as client:
        while True:
            health, history, slo_doc = fetch_frame(client, window_s)
            frame = render(health, history, slo_doc, window_s=window_s)
            if once:
                print(frame, file=stream)
                return 0
            print(_CLEAR + frame, file=stream, flush=True)
            done += 1
            if iterations is not None and done >= iterations:
                return 0
            try:
                time.sleep(interval_s)
            except KeyboardInterrupt:
                return 0
