"""Campaign-as-a-service: the async serving tier (DESIGN.md §5h).

``repro.serve`` puts an HTTP query surface in front of the machinery the
batch CLI drives — the engine registry, the content-addressed
:class:`~repro.campaign.store.ResultStore` and the Section-6 projection
models — so scheme/interval/scale questions are answered interactively
instead of via offline sweeps:

* :mod:`~repro.serve.core` — :class:`ServingCore`, the socket-free
  serving brain: LRU hot-cache over store lookups, request coalescing
  of identical in-flight cells, micro-batching of compatible
  analytic-engine evaluations and a bounded worker pool for CPU-bound
  simulation cells;
* :mod:`~repro.serve.app` — the route table mapping HTTP endpoints
  (``/v1/solve``, ``/v1/project``, ``/v1/reports``, ``/v1/store/stats``,
  ``/healthz``, ``/metrics``) onto the core;
* :mod:`~repro.serve.http` — a minimal asyncio HTTP/1.1 server
  (stdlib only, no web framework);
* :mod:`~repro.serve.client` — a small blocking client used by tests,
  CI and the load generator;
* :mod:`~repro.serve.loadgen` — a threaded load generator measuring
  req/s and p50/p99 latency for the serving benchmark;
* :mod:`~repro.serve.top` — the ``repro top`` terminal dashboard over
  a live server (rates, cache hits, percentiles, SLO burn).

Live observability (DESIGN.md §5i): every request carries an
``X-Repro-Request-Id`` through coalescing/batching into logs and the
stored telemetry; the app samples its metrics into a bounded history
(``/metrics/history``) and evaluates SLO burn (``/slo``) with the same
detector ``repro doctor --history`` runs offline.
"""

from repro.serve.app import ServeApp
from repro.serve.client import ServeClient, ServeError
from repro.serve.core import ServingCore, SolveOutcome
from repro.serve.http import (
    BackgroundServer,
    HttpRequest,
    HttpResponse,
    ServeServer,
)
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.top import run_top

__all__ = [
    "BackgroundServer",
    "HttpRequest",
    "HttpResponse",
    "LoadReport",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "ServingCore",
    "SolveOutcome",
    "run_load",
    "run_top",
]
