"""Threaded load generator: req/s and latency percentiles.

Drives any request function against a running server from N worker
threads (each with its own keep-alive :class:`ServeClient`) and folds
every request's wall latency into a :class:`LoadReport`.  This is what
the serving benchmark (benchmarks/perf/serving.py) and the CI smoke
job run; it is deliberately simple — closed-loop workers, no ramp-up —
because its job is a trajectory, not a capacity plan.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from repro.serve.client import ServeClient


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of pre-sorted data (q in [0, 1]).

    Textbook nearest rank: ``ceil(q * n)``, 1-indexed, so q=0 resolves
    to the minimum and q=1 to the maximum.  ``ceil`` (not ``round``)
    matters for tiny n — banker's rounding made p90 of 4 samples
    resolve below p50's neighbour.
    """
    if not sorted_values:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class LoadReport:
    """Outcome of one load run."""

    n_requests: int
    concurrency: int
    duration_s: float
    latencies_s: list[float] = field(repr=False, default_factory=list)
    errors: int = 0
    #: Request id of the slowest request (as echoed by the server), the
    #: handle to pull its logs and span tree; None without a server id.
    worst_request_id: str | None = None

    @property
    def req_per_s(self) -> float:
        return self.n_requests / self.duration_s if self.duration_s > 0 else 0.0

    def latency_s(self, q: float) -> float:
        return percentile(sorted(self.latencies_s), q)

    def to_dict(self) -> dict:
        return {
            "n_requests": self.n_requests,
            "concurrency": self.concurrency,
            "duration_s": self.duration_s,
            "req_per_s": self.req_per_s,
            "p50_ms": self.latency_s(0.50) * 1e3,
            "p90_ms": self.latency_s(0.90) * 1e3,
            "p99_ms": self.latency_s(0.99) * 1e3,
            "max_ms": max(self.latencies_s) * 1e3,
            "errors": self.errors,
            "worst_request_id": self.worst_request_id,
        }

    def summary(self) -> str:
        d = self.to_dict()
        worst = f" (worst: {d['worst_request_id']})" if d["worst_request_id"] else ""
        return (
            f"{d['n_requests']} requests, {d['concurrency']} workers, "
            f"{d['duration_s']:.2f}s: {d['req_per_s']:.0f} req/s, "
            f"p50 {d['p50_ms']:.2f}ms, p90 {d['p90_ms']:.2f}ms, "
            f"p99 {d['p99_ms']:.2f}ms, max {d['max_ms']:.2f}ms, "
            f"{d['errors']} errors{worst}"
        )


def run_load(
    host: str,
    port: int,
    request_fn,
    *,
    n_requests: int = 200,
    concurrency: int = 4,
    timeout: float = 60.0,
) -> LoadReport:
    """Fire ``n_requests`` total from ``concurrency`` closed-loop workers.

    ``request_fn(client, i)`` issues request ``i`` on a worker's own
    client; exceptions count as errors (their wall time still counts,
    so a timing-out server cannot flatter its percentiles).
    """
    if n_requests < 1:
        raise ValueError("n_requests must be >= 1")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")
    latencies: list[float] = []
    errors = [0]
    worst: list = [0.0, None]  # [latency, request id]
    lock = threading.Lock()
    counter = iter(range(n_requests))

    def worker() -> None:
        with ServeClient(host, port, timeout=timeout) as client:
            while True:
                with lock:
                    i = next(counter, None)
                if i is None:
                    return
                t0 = time.perf_counter()
                try:
                    request_fn(client, i)
                    failed = False
                except Exception:
                    failed = True
                elapsed = time.perf_counter() - t0
                with lock:
                    latencies.append(elapsed)
                    if failed:
                        errors[0] += 1
                    if elapsed >= worst[0]:
                        worst[0] = elapsed
                        worst[1] = client.last_request_id

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{w}")
        for w in range(min(concurrency, n_requests))
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0
    return LoadReport(
        n_requests=n_requests,
        concurrency=len(threads),
        duration_s=duration,
        latencies_s=latencies,
        errors=errors[0],
        worst_request_id=worst[1],
    )
