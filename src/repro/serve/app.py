"""HTTP API surface: routes requests onto the serving core.

Endpoints (all JSON unless noted)::

    GET  /healthz             liveness + engine/store inventory
    GET  /metrics             Prometheus text exposition (server +
                              serving-core metrics)
    GET  /v1/store/stats      ResultStore counters + serving caches
    POST /v1/solve            one (config, scheme) cell through the
                              cache tiers; body = ExperimentConfig
                              fields + "scheme"; engine defaults to
                              the analytic model
    POST /v1/project          Section-6 weak-scaling projection;
                              body = {"sizes": [...], "schemes": [...]}
    GET  /v1/reports          index of stored cells
    GET  /v1/reports/{key}    one stored payload (full SolveReport)
    GET  /v1/reports/diff?a=KEY&b=KEY   structural run diff

Solve responses carry cache provenance (``"cache": "lru" | "store" |
"coalesced" | "computed"``) next to the report so clients — and the CI
smoke job — can assert reuse.  Report JSON is the store's own payload
schema (:func:`repro.campaign.serialize.report_to_dict`), so numbers
are bit-identical to a direct engine call.

Observability endpoints (tentpole)::

    GET  /metrics/history?window=S   sampled metrics ring buffer (JSON)
    GET  /slo                        SLO burn-rate status

Every request is stamped with a request id — an inbound
``X-Repro-Request-Id`` is honored, otherwise one is minted — which
flows through the handler task (and therefore through coalescing and
micro-batching) into structured log lines and, for traced solves, the
stored telemetry's root span; the response echoes it back in the same
header.
"""

from __future__ import annotations

import asyncio
import math
import time
from dataclasses import replace as _dc_replace

from repro.campaign.serialize import report_to_dict
from repro.campaign.spec import BASELINE_SCHEME, CampaignCell
from repro.core.backends import DEFAULT_BACKEND
from repro.core.recovery import scheme_names
from repro.engines import engine_names
from repro.harness.experiment import ExperimentConfig
from repro.obs.analysis.render import prometheus_text
from repro.obs.history import MetricsHistory
from repro.obs.logging import (
    REQUEST_ID_HEADER,
    bound_request_id,
    get_logger,
    new_request_id,
    valid_request_id,
)
from repro.obs.slo import DEFAULT_SLOS, Slo, evaluate_slos
from repro.serve.core import ServingCore
from repro.serve.http import HttpRequest, HttpResponse

_log = get_logger("serve.app")

#: Engine the solve endpoint uses when the request names none: the
#: closed-form model — the 145x-cheaper path an interactive tier wants.
DEFAULT_SERVE_ENGINE = "analytic"

#: Accepted spelling for the analytic engine in requests ("the model").
ENGINE_ALIASES = {"model": "analytic"}

#: ExperimentConfig fields a solve request may set, with the JSON types
#: each accepts.  Checked before construction: ExperimentConfig itself
#: validates values, not types, and a str nranks would only explode deep
#: inside a solve.
_CONFIG_FIELDS: dict[str, tuple[type, ...]] = {
    "matrix": (str,),
    "nranks": (int,),
    "n_faults": (int,),
    "tol": (int, float),
    "seed": (int,),
    "scale": (int, float),
    "cr_interval": (str, int),
    "construct_tol": (int, float),
    "max_iters": (int,),
    "engine": (str,),
    "fault_scope": (str,),
    "trace": (bool,),
    "backend": (str,),
    "victims_per_fault": (int,),
}


class RequestError(ValueError):
    """A well-formed HTTP request asking for something invalid (400)."""


def parse_solve_request(
    payload: dict, *, default_backend: str = DEFAULT_BACKEND
) -> CampaignCell:
    """Validate a /v1/solve body into a campaign cell."""
    if not isinstance(payload, dict):
        raise RequestError("body must be a JSON object")
    payload = dict(payload)
    payload.setdefault("backend", default_backend)
    scheme = payload.pop("scheme", BASELINE_SCHEME)
    known = set(scheme_names()) | {BASELINE_SCHEME}
    if scheme not in known:
        raise RequestError(
            f"unknown scheme {scheme!r}; known: {', '.join(sorted(known))}"
        )
    unknown = set(payload) - set(_CONFIG_FIELDS)
    if unknown:
        raise RequestError(
            f"unknown fields: {', '.join(sorted(unknown))}; "
            f"accepted: scheme, {', '.join(sorted(_CONFIG_FIELDS))}"
        )
    for name, value in payload.items():
        accepted = _CONFIG_FIELDS[name]
        # bools are ints in python; reject them except where bool is the
        # accepted type, so {"nranks": true} still fails loudly
        if bool in accepted:
            ok = isinstance(value, bool)
        else:
            ok = not isinstance(value, bool) and isinstance(value, accepted)
        if not ok:
            raise RequestError(
                f"field {name!r} must be "
                f"{' or '.join(t.__name__ for t in accepted)}, "
                f"got {type(value).__name__}"
            )
    engine = payload.get("engine", DEFAULT_SERVE_ENGINE)
    payload["engine"] = ENGINE_ALIASES.get(engine, engine)
    if payload["engine"] not in engine_names():
        raise RequestError(
            f"unknown engine {engine!r}; known: "
            f"{', '.join(engine_names())} (alias: model)"
        )
    try:
        config = ExperimentConfig(**payload)
    except (TypeError, ValueError) as exc:
        raise RequestError(str(exc)) from None
    return CampaignCell(config=config, scheme=scheme)


def _finite(x: float) -> float | None:
    """Strict-JSON stand-in: the projection's halt state (inf) -> None."""
    return None if (math.isinf(x) or math.isnan(x)) else x


class ServeApp:
    """Route table over one :class:`ServingCore` (+ optional store)."""

    def __init__(
        self,
        core: ServingCore,
        *,
        history: MetricsHistory | None = None,
        slos: tuple[Slo, ...] = DEFAULT_SLOS,
        default_backend: str = DEFAULT_BACKEND,
    ) -> None:
        self.core = core
        self.default_backend = default_backend
        self.started_at = time.time()
        #: Sampled metrics ring buffer behind /metrics/history; the
        #: sampler task starts lazily on the first served request so the
        #: app binds to whichever event loop actually runs it.
        self.history = history if history is not None else MetricsHistory()
        self.slos = slos
        self._sampler_task: asyncio.Task | None = None

    # -- metrics sampling ----------------------------------------------
    def _ensure_sampler(self) -> None:
        if self._sampler_task is not None and not self._sampler_task.done():
            return
        self.history.sample(self.core.metrics)
        self._sampler_task = asyncio.get_running_loop().create_task(
            self._sampler_loop(), name="repro-serve-sampler"
        )

    async def _sampler_loop(self) -> None:
        while True:
            await asyncio.sleep(self.history.interval_s)
            self.history.sample(self.core.metrics)

    # -- dispatch ------------------------------------------------------
    async def handle(self, request: HttpRequest) -> HttpResponse:
        """The ``ServeServer`` app callback."""
        t0 = time.perf_counter()
        self._ensure_sampler()
        request_id = (
            valid_request_id(request.headers.get(REQUEST_ID_HEADER.lower()))
            or new_request_id()
        )
        endpoint, handler = self._route(request)
        with bound_request_id(request_id):
            try:
                if handler is None:
                    response = HttpResponse.error(
                        404, f"no route for {request.method} {request.path}"
                    )
                else:
                    response = await handler(request)
            except RequestError as exc:
                response = HttpResponse.error(400, str(exc))
            except ValueError as exc:
                # bad JSON bodies and engine/scheme validation both land here
                response = HttpResponse.error(400, str(exc))
            except Exception as exc:  # answer 500 in-app so the failure
                # still lands in serve_requests{status=5xx} and the logs
                response = HttpResponse.error(
                    500, f"{type(exc).__name__}: {exc}"
                )
            elapsed = time.perf_counter() - t0
            level = "info" if response.status < 500 else "error"
            _log.log(
                level,
                "request",
                method=request.method,
                path=request.path,
                endpoint=endpoint,
                status=response.status,
                elapsed_ms=round(elapsed * 1e3, 3),
            )
        metrics = self.core.metrics
        metrics.counter(
            "serve_requests",
            endpoint=endpoint,
            status=str(response.status),
        ).inc()
        hist_kwargs = (
            {"buckets": self.core.latency_buckets}
            if self.core.latency_buckets
            else {}
        )
        metrics.histogram(
            "serve_request_latency_s", endpoint=endpoint, **hist_kwargs
        ).observe(elapsed)
        return _dc_replace(
            response,
            headers={**response.headers, REQUEST_ID_HEADER: request_id},
        )

    __call__ = handle

    def _route(self, request: HttpRequest):
        """(endpoint label, handler) for one request; label is the
        metrics axis, so path parameters collapse onto one series."""
        path, method = request.path.rstrip("/") or "/", request.method
        table = {
            ("GET", "/healthz"): ("/healthz", self.healthz),
            ("GET", "/metrics"): ("/metrics", self.metrics),
            ("GET", "/metrics/history"): ("/metrics/history", self.metrics_history),
            ("GET", "/slo"): ("/slo", self.slo_status),
            ("GET", "/v1/store/stats"): ("/v1/store/stats", self.store_stats),
            ("POST", "/v1/solve"): ("/v1/solve", self.solve),
            ("POST", "/v1/project"): ("/v1/project", self.project),
            ("GET", "/v1/reports"): ("/v1/reports", self.reports_index),
            ("GET", "/v1/reports/diff"): ("/v1/reports/diff", self.reports_diff),
        }
        if (method, path) in table:
            return table[(method, path)]
        if method == "GET" and path.startswith("/v1/reports/"):
            return "/v1/reports/{key}", self.report_by_key
        return request.path, None

    # -- handlers ------------------------------------------------------
    async def healthz(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.json(
            {
                "status": "ok",
                "engines": engine_names(),
                "store": self.core.store is not None,
                "uptime_s": round(time.time() - self.started_at, 3),
            }
        )

    async def metrics(self, request: HttpRequest) -> HttpResponse:
        return HttpResponse.text(prometheus_text(self.core.metrics))

    async def metrics_history(self, request: HttpRequest) -> HttpResponse:
        window_s = None
        raw = request.query.get("window")
        if raw is not None:
            try:
                window_s = float(raw)
            except ValueError:
                raise RequestError(f"bad window {raw!r}") from None
            if window_s <= 0:
                raise RequestError("window must be > 0 seconds")
        return HttpResponse.json(self.history.to_doc(window_s))

    async def slo_status(self, request: HttpRequest) -> HttpResponse:
        statuses = evaluate_slos(self.history, self.slos)
        return HttpResponse.json(
            {
                "firing": any(s.firing for s in statuses),
                "slos": [s.to_dict() for s in statuses],
            }
        )

    async def store_stats(self, request: HttpRequest) -> HttpResponse:
        store = self.core.store
        stats = {"store": None if store is None else store.stats()}
        stats["serving"] = self.core.cache_stats()
        return HttpResponse.json(stats)

    async def solve(self, request: HttpRequest) -> HttpResponse:
        cell = parse_solve_request(
            request.json(), default_backend=self.default_backend
        )
        outcome = await self.core.solve_cell(cell)
        return HttpResponse.json(
            {
                "key": outcome.key,
                "label": cell.label,
                "cache": outcome.source,
                "elapsed_s": outcome.elapsed_s,
                "report": report_to_dict(outcome.report),
            }
        )

    async def project(self, request: HttpRequest) -> HttpResponse:
        from repro.core.models.projection import FIGURE9_SCHEMES, project

        payload = request.json()
        if not isinstance(payload, dict):
            raise RequestError("body must be a JSON object")
        unknown = set(payload) - {"sizes", "schemes"}
        if unknown:
            raise RequestError(f"unknown fields: {', '.join(sorted(unknown))}")
        sizes = payload.get("sizes")
        if not isinstance(sizes, list) or not sizes or not all(
            isinstance(n, int) and n >= 1 for n in sizes
        ):
            raise RequestError("'sizes' must be a non-empty list of ints >= 1")
        schemes = payload.get("schemes", list(FIGURE9_SCHEMES))
        unknown = set(schemes) - set(FIGURE9_SCHEMES)
        if unknown:
            raise RequestError(
                f"unknown projection schemes: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(FIGURE9_SCHEMES)}"
            )
        data = project(sorted(sizes), schemes=tuple(schemes))
        return HttpResponse.json(
            {
                "sizes": sorted(sizes),
                "points": {
                    scheme: [
                        {
                            "n": p.n,
                            "system_mtbf_s": _finite(p.system_mtbf_s),
                            "t_res_ratio": _finite(p.t_res_ratio),
                            "e_res_ratio": _finite(p.e_res_ratio),
                            "power_ratio": _finite(p.power_ratio),
                            "halted": p.halted,
                        }
                        for p in points
                    ]
                    for scheme, points in data.items()
                },
            }
        )

    def _require_store(self):
        if self.core.store is None:
            raise RequestError("this server runs without a result store")
        return self.core.store

    async def reports_index(self, request: HttpRequest) -> HttpResponse:
        store = self._require_store()
        rows = [
            {
                "key": entry.key,
                "label": entry.cell.label,
                "scheme": entry.cell.scheme,
                "matrix": entry.cell.config.matrix,
                "engine": entry.cell.config.engine,
                "converged": entry.report.converged,
                "iterations": entry.report.iterations,
                "time_s": entry.report.time_s,
                "energy_j": entry.report.energy_j,
            }
            for entry in store.entries()
        ]
        return HttpResponse.json({"entries": rows, "count": len(rows)})

    async def report_by_key(self, request: HttpRequest) -> HttpResponse:
        store = self._require_store()
        key = request.path.rstrip("/").rsplit("/", 1)[-1]
        for entry in store.entries():
            if entry.key == key:
                return HttpResponse.json(
                    {
                        "key": entry.key,
                        "label": entry.cell.label,
                        "elapsed_s": entry.elapsed_s,
                        "created_at": entry.created_at,
                        "report": report_to_dict(entry.report),
                    }
                )
        return HttpResponse.error(404, f"no stored cell with key {key!r}")

    async def reports_diff(self, request: HttpRequest) -> HttpResponse:
        from repro.obs.analysis.diffing import diff_runs
        from repro.obs.analysis.records import RunRecord
        from repro.obs.analysis.render import format_run_diff

        store = self._require_store()
        want_a, want_b = request.query.get("a"), request.query.get("b")
        if not want_a or not want_b:
            raise RequestError("need query params a=KEY and b=KEY")
        found = {}
        for entry in store.entries():
            if entry.key in (want_a, want_b):
                found[entry.key] = entry
        missing = [k for k in (want_a, want_b) if k not in found]
        if missing:
            return HttpResponse.error(
                404, f"no stored cell with key {missing[0]!r}"
            )
        records = [
            RunRecord(
                label=found[k].cell.label,
                report=found[k].report,
                telemetry=found[k].report.details.get("telemetry"),
                config=found[k].cell.config,
            )
            for k in (want_a, want_b)
        ]
        diff = diff_runs(records[0], records[1])
        return HttpResponse.json(
            {
                "a": {"key": want_a, "label": records[0].label},
                "b": {"key": want_b, "label": records[1].label},
                "identical": diff.identical,
                "n_changes": diff.n_changes,
                "text": format_run_diff(diff),
            }
        )

    # -- lifecycle -----------------------------------------------------
    def lifetime_summary(self) -> dict:
        """Lifetime counters for the final shutdown log line."""
        from repro.obs.metrics import MetricsRegistry

        snap = self.core.metrics.snapshot()
        requests_total = 0.0
        errors_5xx = 0.0
        solves: dict[str, int] = {}
        for series, value in snap.get("counters", {}).items():
            name, labels = MetricsRegistry._parse_series(series)
            if name == "serve_requests":
                requests_total += value
                if labels.get("status", "").startswith("5"):
                    errors_5xx += value
            elif name == "serve_solve":
                source = labels.get("source", "")
                solves[source] = solves.get(source, 0) + int(value)
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": int(requests_total),
            "errors_5xx": int(errors_5xx),
            "solves_by_source": dict(sorted(solves.items())),
            "history_samples": len(self.history),
        }
