"""Fault taxonomy (paper Section 2.1).

Soft faults cause erroneous deviation without interruption; hard faults
crash a process, node or system.  The paper studies recovery for faults
that are *detected* and *confined* to a subset of data structures [10]:
the victim process's partition of the dynamic data x is erroneous or lost
while the static data A and b can be restored from persistent storage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(enum.Enum):
    """Soft vs hard."""

    SOFT = "soft"
    HARD = "hard"


class FaultClass(enum.Enum):
    """The six fault classes the paper enumerates."""

    #: Detected and Corrected Error (e.g. single-bit ECC correction).
    DCE = ("DCE", FaultKind.SOFT)
    #: Detected but Uncorrected Error (e.g. multi-bit ECC detection).
    DUE = ("DUE", FaultKind.SOFT)
    #: Silent Data Corruption.
    SDC = ("SDC", FaultKind.SOFT)
    #: System-Wide Outage.
    SWO = ("SWO", FaultKind.HARD)
    #: Single Node Failure.
    SNF = ("SNF", FaultKind.HARD)
    #: Link and Node Failure.
    LNF = ("LNF", FaultKind.HARD)

    def __init__(self, label: str, kind: FaultKind) -> None:
        self.label = label
        self.kind = kind

    @property
    def is_soft(self) -> bool:
        return self.kind is FaultKind.SOFT

    @property
    def is_hard(self) -> bool:
        return self.kind is FaultKind.HARD

    @property
    def needs_recovery(self) -> bool:
        """DCE is corrected by hardware; everything else loses data."""
        return self is not FaultClass.DCE


class FaultScope(enum.Enum):
    """Blast radius of one fault.

    The paper's experiments confine every fault to a single process's
    data (Figure 2b), which is ``PROCESS``.  The taxonomy's hard-fault
    classes suggest wider radii — a single node failure (SNF) takes all
    ranks bound to that node with it, a system-wide outage (SWO) takes
    everything — provided as the ``NODE`` and ``SYSTEM`` extension
    scopes (see the node-failure ablation benchmark).
    """

    PROCESS = "process"
    NODE = "node"
    SYSTEM = "system"


@dataclass(frozen=True)
class FaultEvent:
    """One fault striking at one iteration.

    ``iteration`` is the CG iteration during which the fault strikes
    (the paper schedules faults by iteration index); ``victim_rank`` is
    the process whose partition of x is lost or corrupted — for wider
    scopes, the anchor rank from which the blast radius is expanded
    (its node, or the whole system).

    ``victims`` is the full set of ranks struck *simultaneously* by this
    one event (concurrent failures in the sense of Pachajoa et al.,
    arXiv:1907.13077).  The single-victim case is the degenerate default:
    when ``victims`` is left empty it is normalised to
    ``(victim_rank,)``, so every pre-existing construction site, equality
    comparison and serialized payload keeps its exact meaning.  When
    given explicitly, ``victims`` is de-duplicated preserving order and
    must contain ``victim_rank`` (the anchor).  ``scope`` expands each
    victim independently (a NODE-scope event with two victims loses both
    victims' nodes).
    """

    iteration: int
    victim_rank: int
    fault_class: FaultClass = FaultClass.SNF
    scope: FaultScope = FaultScope.PROCESS
    victims: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")
        if self.victim_rank < 0:
            raise ValueError("victim rank must be non-negative")
        if not self.victims:
            object.__setattr__(self, "victims", (self.victim_rank,))
            return
        victims = tuple(dict.fromkeys(int(v) for v in self.victims))
        if any(v < 0 for v in victims):
            raise ValueError("victim rank must be non-negative")
        if self.victim_rank not in victims:
            raise ValueError(
                f"victim_rank {self.victim_rank} must be a member of "
                f"victims {victims}"
            )
        object.__setattr__(self, "victims", victims)

    @classmethod
    def multi(
        cls,
        iteration: int,
        victims: "tuple[int, ...] | list[int]",
        fault_class: FaultClass = FaultClass.SNF,
        scope: FaultScope = FaultScope.PROCESS,
    ) -> "FaultEvent":
        """Event striking every rank in ``victims`` at once; the first
        entry is the anchor ``victim_rank``."""
        victims = tuple(int(v) for v in victims)
        if not victims:
            raise ValueError("need at least one victim")
        return cls(iteration, victims[0], fault_class, scope, victims=victims)
