"""MTBF estimation for petascale and exascale systems (Figure 1).

The paper projects MTBF per fault class from petascale field data [19]
to an exascale machine, assuming

* a petascale machine of 20K nodes in today's technology,
* an exascale machine of 1M nodes in 11 nm technology,
* MTBF affected only by system size and node-level technology
  ("we conservatively assume that MTBF is only affected by system size
  and node-level technology").

System MTBF for independent per-node fault processes is the node MTBF
divided by the node count; the 11 nm shrink multiplies per-node fault
rates by a per-class technology factor (soft errors degrade most at low
voltage / small feature size [4, 38]).

The per-node MTBF defaults are calibrated to the Blue Waters field study
[19]: the resulting petascale system MTBF lands in the paper's quoted
1-7 day band per class, and the exascale projection lands within an hour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.events import FaultClass


@dataclass(frozen=True)
class SystemClass:
    """A machine generation for MTBF projection."""

    name: str
    nodes: int
    #: Per-class multiplier on the per-node fault *rate* relative to
    #: today's technology (1.0 = no change; >1 = more faults).
    tech_rate_factor: dict[FaultClass, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("system needs at least one node")
        for f in self.tech_rate_factor.values():
            if f <= 0:
                raise ValueError("technology factors must be positive")

    def factor(self, cls: FaultClass) -> float:
        return self.tech_rate_factor.get(cls, 1.0)


#: Per-node MTBF in hours, today's technology, per fault class.
#: Calibrated to land the 20K-node system MTBF in the 1-7 day band [19].
DEFAULT_NODE_MTBF_H: dict[FaultClass, float] = {
    FaultClass.DCE: 8.0e5,   # corrected memory errors are the most frequent
    FaultClass.DUE: 2.4e6,
    FaultClass.SDC: 3.4e6,
    FaultClass.SNF: 1.6e6,
    FaultClass.LNF: 2.9e6,
    FaultClass.SWO: 2.0e6,   # system-wide outages, amortised per node
}

#: Fault-rate degradation of 11 nm + near-threshold technology vs today.
#: Soft-error rates grow the most as feature size and voltage shrink
#: [4, 38]; hard-fault rates grow moderately with component count/stress.
EXASCALE_TECH_FACTOR: dict[FaultClass, float] = {
    FaultClass.DCE: 4.0,
    FaultClass.DUE: 3.5,
    FaultClass.SDC: 4.0,
    FaultClass.SNF: 1.8,
    FaultClass.LNF: 1.6,
    FaultClass.SWO: 1.5,
}

PETASCALE = SystemClass(name="petascale", nodes=20_000)
EXASCALE = SystemClass(
    name="exascale", nodes=1_000_000, tech_rate_factor=EXASCALE_TECH_FACTOR
)


@dataclass(frozen=True)
class MtbfEstimator:
    """Estimates node- and system-level MTBF per fault class."""

    node_mtbf_h: dict[FaultClass, float] = field(
        default_factory=lambda: dict(DEFAULT_NODE_MTBF_H)
    )

    def __post_init__(self) -> None:
        for cls, h in self.node_mtbf_h.items():
            if h <= 0:
                raise ValueError(f"MTBF for {cls.label} must be positive")

    def node_mtbf(self, cls: FaultClass, system: SystemClass) -> float:
        """Per-node MTBF in hours on ``system``'s technology."""
        base = self.node_mtbf_h[cls]
        return base / system.factor(cls)

    def system_mtbf(self, cls: FaultClass, system: SystemClass) -> float:
        """System MTBF in hours: node MTBF / node count (independent
        per-node fault processes; rates add)."""
        return self.node_mtbf(cls, system) / system.nodes

    def system_rate_per_hour(self, cls: FaultClass, system: SystemClass) -> float:
        """The failure rate lambda used by the analytical models."""
        return 1.0 / self.system_mtbf(cls, system)

    def combined_system_mtbf(self, system: SystemClass, classes=None) -> float:
        """MTBF over several classes (rates add)."""
        classes = list(classes) if classes is not None else list(self.node_mtbf_h)
        if not classes:
            raise ValueError("need at least one fault class")
        rate = sum(self.system_rate_per_hour(c, system) for c in classes)
        return 1.0 / rate

    def figure1_table(self) -> dict[str, dict[str, float]]:
        """System MTBF (hours) per class for both machine generations,
        i.e. the data behind Figure 1."""
        out: dict[str, dict[str, float]] = {}
        for system in (PETASCALE, EXASCALE):
            out[system.name] = {
                cls.label: self.system_mtbf(cls, system)
                for cls in self.node_mtbf_h
            }
        return out
