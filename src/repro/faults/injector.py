"""Fault injection on the solver's dynamic data.

When a fault strikes process ``p_i``, the data in its memory is erroneous
or lost (Figure 2b): its partition of the iterate x — and of every other
dynamic CG vector — must be treated as gone.  Static data (the matrix
rows and b) are restored from persistent storage immediately and are not
modelled as lost (Section 3.2, following [2]).

Hard faults *lose* the data (modelled as NaN poison so accidental reads
are loud); SDC *corrupts* it (bit-flip-like multiplicative noise).  In
both cases the paper's recovery schemes overwrite the entire victim
partition, so the two modes converge to the same recovery problem; the
distinction matters for detecting accidental use of dead data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.events import FaultEvent
from repro.matrices.partition import BlockRowPartition


@dataclass
class FaultInjector:
    """Applies :class:`FaultEvent` damage to partitioned vectors."""

    partition: BlockRowPartition
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def inject(
        self,
        event: FaultEvent,
        *vectors: np.ndarray,
        victims: Sequence[int] | None = None,
    ) -> "slice | list[slice]":
        """Damage every victim's rows of every given vector, in place.

        ``victims`` defaults to ``event.victims``; the solver passes the
        scope-expanded set explicitly.  Victims are damaged in order,
        each corrupting every vector before the next victim is struck,
        so a multi-victim event draws the same RNG stream as the
        per-sub-event injection loop it replaces.

        Returns the slice of damaged rows for a single victim, or the
        list of per-victim slices when the event strikes several.
        """
        if victims is None:
            victims = event.victims
        slices = []
        for victim in victims:
            sl = self.partition.slice_of(victim)
            slices.append(sl)
            if event.fault_class.is_hard or not event.fault_class.is_soft:
                for v in vectors:
                    self._check(v)
                    v[sl] = np.nan
            else:
                # Soft corruption: flip the exponent/mantissa scale of
                # random entries.  The values stay finite but are
                # numerically junk.
                for v in vectors:
                    self._check(v)
                    block = v[sl]
                    n = block.size
                    if n == 0:
                        continue
                    nflip = max(1, n // 8)
                    idx = self._rng.choice(n, size=nflip, replace=False)
                    scale = self._rng.choice(
                        [2.0 ** 40, -1.0, 2.0 ** -40], size=nflip
                    )
                    block[idx] = (
                        block[idx] * scale + self._rng.standard_normal(nflip)
                    )
                    v[sl] = block
        return slices[0] if len(slices) == 1 else slices

    def _check(self, v: np.ndarray) -> None:
        if v.ndim != 1 or v.shape[0] != self.partition.n:
            raise ValueError(
                f"vector of shape {v.shape} does not match partition over n={self.partition.n}"
            )
