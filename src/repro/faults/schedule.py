"""Fault schedules.

The paper's resilience experiments insert "10 faults evenly over the
iterations required by the fault free execution (no more faults inserted
after the fault free execution converges)" (Section 5.2); its analytical
models assume a Poisson arrival process with rate lambda = 1/MTBF.  Both
are provided, plus an explicit fixed-iteration schedule for targeted
experiments like Figure 6(a)'s single fault at iteration 200.

All schedules are deterministic given their arguments (Poisson takes an
explicit seed) and yield :class:`~repro.faults.events.FaultEvent` objects
sorted by iteration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.events import FaultClass, FaultEvent, FaultScope


class FaultSchedule(abc.ABC):
    """Produces the fault events for one solver run."""

    @abc.abstractmethod
    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        """Fault events for a run of ``horizon_iters`` fault-free
        iterations on ``nranks`` ranks, sorted by iteration."""

    @staticmethod
    def _validate(nranks: int, horizon_iters: int) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        if horizon_iters < 0:
            raise ValueError("horizon must be non-negative")


@dataclass(frozen=True)
class EmptySchedule(FaultSchedule):
    """No faults — the fault-free baseline."""

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        return []


@dataclass(frozen=True)
class FixedIterationSchedule(FaultSchedule):
    """Faults at explicitly given (iteration, victim) pairs."""

    iterations: Sequence[int]
    victims: Sequence[int] | None = None
    fault_class: FaultClass = FaultClass.SNF
    scope: FaultScope = FaultScope.PROCESS

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        if self.victims is not None and len(self.victims) != len(self.iterations):
            raise ValueError("victims must match iterations in length")
        out = []
        for idx, it in enumerate(self.iterations):
            victim = (
                self.victims[idx] if self.victims is not None else idx % nranks
            )
            if not 0 <= victim < nranks:
                raise ValueError(f"victim {victim} out of range")
            out.append(
                FaultEvent(int(it), int(victim), self.fault_class, self.scope)
            )
        return sorted(out, key=lambda e: e.iteration)


@dataclass(frozen=True)
class EvenlySpacedSchedule(FaultSchedule):
    """``n_faults`` spread evenly over the fault-free iteration span.

    Fault *j* (1-based) lands at ``round(j * horizon / (n_faults + 1))``,
    so faults are interior: none at iteration 0, none after the fault-free
    run would have converged — matching the paper's protocol.  Victims
    rotate round-robin over ranks with a seed-controlled starting offset.
    """

    n_faults: int
    fault_class: FaultClass = FaultClass.SNF
    scope: FaultScope = FaultScope.PROCESS
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_faults < 0:
            raise ValueError("n_faults must be non-negative")

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        if self.n_faults == 0 or horizon_iters == 0:
            return []
        rng = np.random.default_rng(self.seed)
        start = int(rng.integers(0, nranks))
        out = []
        for j in range(1, self.n_faults + 1):
            it = int(round(j * horizon_iters / (self.n_faults + 1)))
            it = min(max(it, 1), max(horizon_iters - 1, 1))
            victim = (start + j - 1) % nranks
            out.append(FaultEvent(it, victim, self.fault_class, self.scope))
        return out


@dataclass(frozen=True)
class PoissonSchedule(FaultSchedule):
    """Memoryless fault arrivals with a given MTBF, in iteration units.

    ``mtbf_iters`` is the mean number of iterations between faults; the
    analytical models' failure rate is ``lambda = 1 / mtbf_iters``.  The
    schedule draws i.i.d. exponential gaps.  Events beyond the fault-free
    horizon are kept (faults do not stop arriving just because the
    fault-free run would have finished) up to ``horizon_factor`` times the
    horizon, a guard against schedules that outlive any realistic run.
    """

    mtbf_iters: float
    seed: int = 0
    fault_class: FaultClass = FaultClass.SNF
    horizon_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.mtbf_iters <= 0:
            raise ValueError("MTBF must be positive")
        if self.horizon_factor < 1:
            raise ValueError("horizon factor must be >= 1")

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        rng = np.random.default_rng(self.seed)
        limit = self.horizon_factor * max(horizon_iters, 1)
        out: list[FaultEvent] = []
        t = 0.0
        while True:
            t += rng.exponential(self.mtbf_iters)
            if t > limit:
                break
            it = max(1, int(round(t)))
            victim = int(rng.integers(0, nranks))
            out.append(FaultEvent(it, victim, self.fault_class))
        return out
