"""Fault schedules.

The paper's resilience experiments insert "10 faults evenly over the
iterations required by the fault free execution (no more faults inserted
after the fault free execution converges)" (Section 5.2); its analytical
models assume a Poisson arrival process with rate lambda = 1/MTBF.  Both
are provided, plus an explicit fixed-iteration schedule for targeted
experiments like Figure 6(a)'s single fault at iteration 200.

All schedules are deterministic given their arguments (Poisson takes an
explicit seed) and yield :class:`~repro.faults.events.FaultEvent` objects
sorted by iteration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.faults.events import FaultClass, FaultEvent, FaultScope


class FaultSchedule(abc.ABC):
    """Produces the fault events for one solver run."""

    @abc.abstractmethod
    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        """Fault events for a run of ``horizon_iters`` fault-free
        iterations on ``nranks`` ranks, sorted by iteration."""

    @staticmethod
    def _validate(nranks: int, horizon_iters: int) -> None:
        if nranks < 1:
            raise ValueError("need at least one rank")
        if horizon_iters < 0:
            raise ValueError("horizon must be non-negative")


@dataclass(frozen=True)
class EmptySchedule(FaultSchedule):
    """No faults — the fault-free baseline."""

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        return []


def _check_victims_per_fault(victims_per_fault: int, nranks: int) -> int:
    if victims_per_fault < 1:
        raise ValueError("victims_per_fault must be >= 1")
    if victims_per_fault > nranks:
        raise ValueError(
            f"victims_per_fault {victims_per_fault} exceeds nranks {nranks}"
        )
    return victims_per_fault


@dataclass(frozen=True)
class FixedIterationSchedule(FaultSchedule):
    """Faults at explicitly given (iteration, victim) pairs.

    Each ``victims`` entry may be a single rank or a sequence of ranks
    struck simultaneously by that event.  ``victims_per_fault`` widens
    scalar assignments (explicit or default round-robin) into a run of
    that many consecutive ranks, so a simultaneous-failure schedule can
    be requested without spelling out every victim set.

    Duplicate ``(iteration, victim)`` pairs are rejected: the same rank
    cannot be struck twice at the same iteration, whether within one
    event's victim set or across two events.
    """

    iterations: Sequence[int]
    victims: "Sequence[int | Sequence[int]] | None" = None
    fault_class: FaultClass = FaultClass.SNF
    scope: FaultScope = FaultScope.PROCESS
    victims_per_fault: int = 1

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        k = _check_victims_per_fault(self.victims_per_fault, nranks)
        if self.victims is not None and len(self.victims) != len(self.iterations):
            raise ValueError("victims must match iterations in length")
        out = []
        seen: set[tuple[int, int]] = set()
        for idx, it in enumerate(self.iterations):
            entry = self.victims[idx] if self.victims is not None else None
            if entry is None:
                vs = tuple((idx + i) % nranks for i in range(k))
            elif isinstance(entry, (int, np.integer)):
                base = int(entry)
                if not 0 <= base < nranks:
                    raise ValueError(f"victim {base} out of range")
                # only the widening run wraps; the given rank must be real
                vs = tuple((base + i) % nranks for i in range(k))
            else:
                vs = tuple(int(v) for v in entry)
                if not vs:
                    raise ValueError(f"victims[{idx}] must not be empty")
            for victim in vs:
                if not 0 <= victim < nranks:
                    raise ValueError(f"victim {victim} out of range")
                pair = (int(it), victim)
                if pair in seen:
                    raise ValueError(
                        f"duplicate fault (iteration={pair[0]}, "
                        f"victim={victim}): each (iteration, victim) pair "
                        "may appear at most once in a schedule"
                    )
                seen.add(pair)
            out.append(
                FaultEvent(
                    int(it), vs[0], self.fault_class, self.scope, victims=vs
                )
            )
        return sorted(out, key=lambda e: e.iteration)


@dataclass(frozen=True)
class EvenlySpacedSchedule(FaultSchedule):
    """``n_faults`` spread evenly over the fault-free iteration span.

    Fault *j* (1-based) lands at ``round(j * horizon / (n_faults + 1))``,
    so faults are interior: none at iteration 0, none after the fault-free
    run would have converged — matching the paper's protocol.  Victims
    rotate round-robin over ranks with a seed-controlled starting offset.
    """

    n_faults: int
    fault_class: FaultClass = FaultClass.SNF
    scope: FaultScope = FaultScope.PROCESS
    seed: int = 0
    victims_per_fault: int = 1

    def __post_init__(self) -> None:
        if self.n_faults < 0:
            raise ValueError("n_faults must be non-negative")
        if self.victims_per_fault < 1:
            raise ValueError("victims_per_fault must be >= 1")

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        k = _check_victims_per_fault(self.victims_per_fault, nranks)
        if self.n_faults == 0 or horizon_iters == 0:
            return []
        rng = np.random.default_rng(self.seed)
        start = int(rng.integers(0, nranks))
        out = []
        for j in range(1, self.n_faults + 1):
            it = int(round(j * horizon_iters / (self.n_faults + 1)))
            it = min(max(it, 1), max(horizon_iters - 1, 1))
            vs = tuple((start + j - 1 + i) % nranks for i in range(k))
            out.append(
                FaultEvent(
                    it, vs[0], self.fault_class, self.scope, victims=vs
                )
            )
        return out


@dataclass(frozen=True)
class PoissonSchedule(FaultSchedule):
    """Memoryless fault arrivals with a given MTBF, in iteration units.

    ``mtbf_iters`` is the mean number of iterations between faults; the
    analytical models' failure rate is ``lambda = 1 / mtbf_iters``.  The
    schedule draws i.i.d. exponential gaps.  Events beyond the fault-free
    horizon are kept (faults do not stop arriving just because the
    fault-free run would have finished) up to ``horizon_factor`` times the
    horizon, a guard against schedules that outlive any realistic run.
    """

    mtbf_iters: float
    seed: int = 0
    fault_class: FaultClass = FaultClass.SNF
    horizon_factor: float = 4.0
    victims_per_fault: int = 1

    def __post_init__(self) -> None:
        if self.mtbf_iters <= 0:
            raise ValueError("MTBF must be positive")
        if self.horizon_factor < 1:
            raise ValueError("horizon factor must be >= 1")
        if self.victims_per_fault < 1:
            raise ValueError("victims_per_fault must be >= 1")

    def events(self, *, nranks: int, horizon_iters: int) -> list[FaultEvent]:
        self._validate(nranks, horizon_iters)
        k = _check_victims_per_fault(self.victims_per_fault, nranks)
        rng = np.random.default_rng(self.seed)
        limit = self.horizon_factor * max(horizon_iters, 1)
        out: list[FaultEvent] = []
        t = 0.0
        while True:
            t += rng.exponential(self.mtbf_iters)
            if t > limit:
                break
            it = max(1, int(round(t)))
            if k == 1:
                # keep the historical single-draw RNG stream bitwise
                vs = (int(rng.integers(0, nranks)),)
            else:
                vs = tuple(
                    int(v) for v in rng.choice(nranks, size=k, replace=False)
                )
            out.append(FaultEvent.multi(it, vs, self.fault_class))
        return out
