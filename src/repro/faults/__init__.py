"""Fault substrate: taxonomy, schedules, injection, MTBF estimation.

Implements the paper's fault model (Section 2.1): soft faults
(DCE/DUE/SDC) and hard faults (SWO/SNF/LNF) that corrupt or destroy the
dynamic data of a single process, with static data (A, b) assumed
recoverable from persistent storage, and the MTBF projection behind
Figure 1.
"""

from repro.faults.events import FaultClass, FaultEvent, FaultKind, FaultScope
from repro.faults.schedule import (
    EvenlySpacedSchedule,
    FixedIterationSchedule,
    PoissonSchedule,
    FaultSchedule,
)
from repro.faults.injector import FaultInjector
from repro.faults.mtbf import MtbfEstimator, SystemClass, PETASCALE, EXASCALE

__all__ = [
    "FaultClass",
    "FaultEvent",
    "FaultKind",
    "FaultScope",
    "FaultSchedule",
    "EvenlySpacedSchedule",
    "FixedIterationSchedule",
    "PoissonSchedule",
    "FaultInjector",
    "MtbfEstimator",
    "SystemClass",
    "PETASCALE",
    "EXASCALE",
]
