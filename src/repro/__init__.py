"""repro — reproduction of "Energy Analysis and Optimization for
Resilient Scalable Linear Systems" (Miao, Calhoun, Ge; CLUSTER 2018).

The package co-simulates time, power, energy and resilience of parallel
CG solves under faults:

>>> from repro import ResilientSolver, SolverConfig, make_scheme
>>> from repro.faults import EvenlySpacedSchedule
>>> from repro.matrices import suite
>>> a = suite.build("crystm02")
>>> import numpy as np
>>> b = a @ np.ones(a.shape[0])
>>> solver = ResilientSolver(
...     a, b,
...     scheme=make_scheme("LI-DVFS"),
...     schedule=EvenlySpacedSchedule(n_faults=10),
...     config=SolverConfig(nranks=16),
... )
>>> report = solver.solve()           # doctest: +SKIP

Subpackages: :mod:`repro.cluster` (simulated machine), :mod:`repro.power`
(DVFS / RAPL / energy accounts), :mod:`repro.faults`, :mod:`repro.checkpoint`,
:mod:`repro.matrices` (Table-3 suite), :mod:`repro.core` (solver, recovery
schemes, Section-3 analytical models), :mod:`repro.harness` (experiment
drivers behind every table and figure).
"""

from repro.core.advisor import Objective, SchemeAdvisor, Situation
from repro.core.cg import DistributedCG
from repro.core.errors import ConvergenceError
from repro.core.recovery import make_scheme, scheme_names
from repro.core.report import SolveReport
from repro.core.solver import ResilientSolver, SolverConfig

__version__ = "1.0.0"

__all__ = [
    "ConvergenceError",
    "DistributedCG",
    "ResilientSolver",
    "SolverConfig",
    "SolveReport",
    "make_scheme",
    "scheme_names",
    "Objective",
    "SchemeAdvisor",
    "Situation",
    "__version__",
]
