"""Checkpoint stores with time and power cost models.

The per-checkpoint cost ``t_C`` "differs with the checkpoint storage —
e.g. local-memory (cheap) or remote disk (expensive)" (Section 3.2), and
under weak scaling ``t_C`` of CR-D grows linearly with system size while
``t_C`` of CR-M stays stable (Section 6).  The two store models reproduce
those behaviours mechanically:

* :class:`MemoryStore` — every rank copies its block to local DRAM in
  parallel; time is set by the per-rank block size, so it is constant
  under weak scaling.
* :class:`DiskStore` — all ranks funnel through a shared parallel file
  system of fixed aggregate bandwidth; time is set by the *total* bytes,
  so it grows linearly with rank count under weak scaling.

Both stores also genuinely retain the snapshot bytes so rollback is an
exact restore, not a simulation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Snapshot:
    """An immutable saved solver state."""

    iteration: int
    x: np.ndarray

    def __post_init__(self) -> None:
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")
        self.x.flags.writeable = False

    @property
    def nbytes(self) -> int:
        return self.x.nbytes


class CheckpointStore(abc.ABC):
    """Retains snapshots and prices their I/O."""

    def __init__(self) -> None:
        self._snapshots: list[Snapshot] = []

    # -- data path -----------------------------------------------------
    def save(self, iteration: int, x: np.ndarray) -> Snapshot:
        snap = Snapshot(iteration, np.array(x, copy=True))
        self._snapshots.append(snap)
        return snap

    def latest(self) -> Snapshot | None:
        """Most recent snapshot, or None if nothing was saved yet."""
        return self._snapshots[-1] if self._snapshots else None

    def latest_before(self, iteration: int) -> Snapshot | None:
        """Most recent snapshot taken at or before ``iteration``."""
        candidates = [s for s in self._snapshots if s.iteration <= iteration]
        return candidates[-1] if candidates else None

    @property
    def count(self) -> int:
        return len(self._snapshots)

    @property
    def bytes_stored(self) -> int:
        return sum(s.nbytes for s in self._snapshots)

    # -- cost model ----------------------------------------------------
    @abc.abstractmethod
    def write_time_s(self, total_bytes: float, nranks: int) -> float:
        """Wall-clock seconds for all ranks to checkpoint ``total_bytes``."""

    @abc.abstractmethod
    def read_time_s(self, total_bytes: float, nranks: int) -> float:
        """Wall-clock seconds for the rollback read."""

    @staticmethod
    def _validate(total_bytes: float, nranks: int) -> None:
        if total_bytes < 0:
            raise ValueError("bytes must be non-negative")
        if nranks < 1:
            raise ValueError("need at least one rank")


@dataclass
class _MemoryParams:
    #: Per-rank copy bandwidth into a DRAM checkpoint buffer.
    bandwidth_gbps: float = 8.0
    latency_s: float = 1e-6


class MemoryStore(CheckpointStore):
    """CR-M: in-memory checkpoints, parallel across ranks."""

    def __init__(self, params: _MemoryParams | None = None) -> None:
        super().__init__()
        self.params = params or _MemoryParams()
        if self.params.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")

    def write_time_s(self, total_bytes: float, nranks: int) -> float:
        self._validate(total_bytes, nranks)
        per_rank = total_bytes / nranks
        return self.params.latency_s + per_rank / (self.params.bandwidth_gbps * 1e9)

    def read_time_s(self, total_bytes: float, nranks: int) -> float:
        return self.write_time_s(total_bytes, nranks)


@dataclass
class _DiskParams:
    #: Aggregate bandwidth of the shared parallel file system.
    aggregate_bandwidth_gbps: float = 2.0
    latency_s: float = 2e-5
    #: Reads hit the PFS cache / dedicated read path slightly faster.
    read_speedup: float = 1.25


class DiskStore(CheckpointStore):
    """CR-D: checkpoints to a shared parallel file system.

    The PFS bandwidth is fixed and shared, so checkpoint time scales with
    the *total* volume — under weak scaling (constant bytes per rank)
    that is linear in the rank count, the behaviour Section 6 projects.
    The disk "is shared between multiple users and consumes a constant
    amount of power regardless of configuration" (Section 5.3), hence no
    disk power term.
    """

    def __init__(self, params: _DiskParams | None = None) -> None:
        super().__init__()
        self.params = params or _DiskParams()
        if self.params.aggregate_bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.params.read_speedup <= 0:
            raise ValueError("read speedup must be positive")

    def write_time_s(self, total_bytes: float, nranks: int) -> float:
        self._validate(total_bytes, nranks)
        return self.params.latency_s + total_bytes / (
            self.params.aggregate_bandwidth_gbps * 1e9
        )

    def read_time_s(self, total_bytes: float, nranks: int) -> float:
        self._validate(total_bytes, nranks)
        return self.params.latency_s + total_bytes / (
            self.params.aggregate_bandwidth_gbps * 1e9 * self.params.read_speedup
        )
