"""Checkpoint substrate: stores, optimal intervals, periodic manager.

Implements the paper's two checkpoint/restart variants (Table 2): CR-M
(checkpoint to node memory, cheap and weak-scaling-constant) and CR-D
(checkpoint to a shared parallel file system, expensive and growing
linearly with system size — Section 6), plus Young's [41] and Daly's [16]
optimal checkpoint interval formulas.
"""

from repro.checkpoint.store import CheckpointStore, DiskStore, MemoryStore, Snapshot
from repro.checkpoint.interval import (
    daly_interval,
    young_interval,
    interval_in_iterations,
)
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.multilevel import MultiLevelManager, MultiLevelRestore

__all__ = [
    "CheckpointStore",
    "DiskStore",
    "MemoryStore",
    "Snapshot",
    "young_interval",
    "daly_interval",
    "interval_in_iterations",
    "CheckpointManager",
    "MultiLevelManager",
    "MultiLevelRestore",
]
