"""Optimal checkpoint interval: Young's and Daly's approximations.

"The optimal checkpointing interval, I_C, is a function of failure rate
and commonly approximated with Young's and Daly's approaches [41, 16]"
(Section 3.2).  Both return the interval between checkpoint *starts* in
seconds given the per-checkpoint cost ``t_C`` and the MTBF ``M``:

* Young [41]:  I = sqrt(2 * t_C * M)
* Daly  [16]:  the higher-order refinement
  I = sqrt(2 * t_C * M) * (1 + sqrt(t_C / (2M)) / 3 + t_C / (9 * 2M)) - t_C
  for t_C < 2M, and I = M for t_C >= 2M.
"""

from __future__ import annotations

import math


def _validate(t_c: float, mtbf: float) -> None:
    if t_c <= 0:
        raise ValueError("checkpoint cost must be positive")
    if mtbf <= 0:
        raise ValueError("MTBF must be positive")


def young_interval(t_c: float, mtbf: float) -> float:
    """Young's first-order optimal checkpoint interval (seconds)."""
    _validate(t_c, mtbf)
    return math.sqrt(2.0 * t_c * mtbf)


def daly_interval(t_c: float, mtbf: float) -> float:
    """Daly's higher-order optimal checkpoint interval (seconds)."""
    _validate(t_c, mtbf)
    if t_c >= 2.0 * mtbf:
        return mtbf
    base = math.sqrt(2.0 * t_c * mtbf)
    ratio = t_c / (2.0 * mtbf)
    return base * (1.0 + math.sqrt(ratio) / 3.0 + ratio / 9.0) - t_c


def interval_in_iterations(
    interval_s: float, time_per_iteration_s: float, *, minimum: int = 1
) -> int:
    """Convert a wall-clock interval to a whole number of CG iterations.

    The solver checkpoints on iteration boundaries, so the interval is
    rounded to the nearest iteration count (at least ``minimum``).
    """
    if interval_s <= 0:
        raise ValueError("interval must be positive")
    if time_per_iteration_s <= 0:
        raise ValueError("iteration time must be positive")
    if minimum < 1:
        raise ValueError("minimum must be at least 1")
    return max(minimum, int(round(interval_s / time_per_iteration_s)))
