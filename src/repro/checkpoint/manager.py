"""Periodic checkpoint manager.

Couples a :class:`~repro.checkpoint.store.CheckpointStore` with a
checkpoint cadence in iterations.  The CR recovery scheme drives it from
the solver loop: ``maybe_checkpoint`` after every iteration, ``rollback``
when a fault strikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checkpoint.store import CheckpointStore, Snapshot


@dataclass
class CheckpointManager:
    """Checkpoints the iterate every ``interval_iters`` iterations."""

    store: CheckpointStore
    interval_iters: int

    def __post_init__(self) -> None:
        if self.interval_iters < 1:
            raise ValueError("interval must be at least one iteration")
        self.writes = 0
        self.rollbacks = 0

    def due(self, iteration: int) -> bool:
        """True when ``iteration`` (1-based count of completed
        iterations) lands on the cadence."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return iteration > 0 and iteration % self.interval_iters == 0

    def maybe_checkpoint(self, iteration: int, x: np.ndarray, nranks: int):
        """Checkpoint if due.  Returns ``(snapshot, write_time_s)`` or
        ``None`` when not due."""
        if not self.due(iteration):
            return None
        snap = self.store.save(iteration, x)
        self.writes += 1
        return snap, self.store.write_time_s(x.nbytes, nranks)

    def rollback(self, iteration: int, nbytes: int, nranks: int):
        """Fetch the newest snapshot at or before ``iteration``.

        Returns ``(snapshot_or_None, read_time_s)``.  With no snapshot
        yet, CR restarts from the initial guess (snapshot None) and the
        read still pays the store's access cost for the attempt.
        """
        self.rollbacks += 1
        snap: Snapshot | None = self.store.latest_before(iteration)
        read_time = self.store.read_time_s(nbytes, nranks)
        return snap, read_time
