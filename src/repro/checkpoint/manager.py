"""Periodic checkpoint manager.

Couples a :class:`~repro.checkpoint.store.CheckpointStore` with a
checkpoint cadence in iterations.  The CR recovery scheme drives it from
the solver loop: ``maybe_checkpoint`` after every iteration, ``rollback``
when a fault strikes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checkpoint.store import CheckpointStore, Snapshot


@dataclass
class CheckpointManager:
    """Checkpoints the iterate every ``interval_iters`` iterations.

    ``metrics`` is an optional :class:`~repro.obs.metrics.MetricsRegistry`;
    when present the manager counts writes/rollbacks and observes write
    durations there, in addition to its own plain counters.
    """

    store: CheckpointStore
    interval_iters: int
    metrics: object = None

    def __post_init__(self) -> None:
        if self.interval_iters < 1:
            raise ValueError("interval must be at least one iteration")
        self.writes = 0
        self.rollbacks = 0
        if self.metrics is not None:
            self.metrics.gauge("checkpoint.interval_iters").set(
                self.interval_iters
            )

    def due(self, iteration: int) -> bool:
        """True when ``iteration`` (1-based count of completed
        iterations) lands on the cadence."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return iteration > 0 and iteration % self.interval_iters == 0

    def maybe_checkpoint(self, iteration: int, x: np.ndarray, nranks: int):
        """Checkpoint if due.  Returns ``(snapshot, write_time_s)`` or
        ``None`` when not due."""
        if not self.due(iteration):
            return None
        snap = self.store.save(iteration, x)
        self.writes += 1
        write_s = self.store.write_time_s(x.nbytes, nranks)
        if self.metrics is not None:
            self.metrics.counter("checkpoint.writes").inc()
            self.metrics.histogram("checkpoint.write_s").observe(write_s)
        return snap, write_s

    def rollback(self, iteration: int, nbytes: int, nranks: int):
        """Fetch the newest snapshot at or before ``iteration``.

        Returns ``(snapshot_or_None, read_time_s)``.  With no snapshot
        yet, CR restarts from the initial guess (snapshot None) and the
        read still pays the store's access cost for the attempt.
        """
        self.rollbacks += 1
        snap: Snapshot | None = self.store.latest_before(iteration)
        read_time = self.store.read_time_s(nbytes, nranks)
        if self.metrics is not None:
            self.metrics.counter("checkpoint.rollbacks").inc()
        return snap, read_time
