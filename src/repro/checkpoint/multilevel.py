"""Multi-level checkpointing (SCR-style).

The paper's related work cites the Scalable Checkpoint/Restart library
[33]: frequent cheap checkpoints to node memory, occasional expensive
ones to the parallel file system, with restart preferring the cheapest
level that still has the data.  :class:`MultiLevelManager` composes the
existing :class:`~repro.checkpoint.store.MemoryStore` and
:class:`~repro.checkpoint.store.DiskStore` that way:

* every ``memory_interval`` iterations -> memory checkpoint;
* every ``disk_every`` memory checkpoints -> the checkpoint *also*
  flushes to disk;
* a single-node failure restores from memory (fast path); a whole-level
  loss (e.g. the victim node's DRAM is gone *and* held the only fresh
  copy) falls back to the newest disk checkpoint.

The fault model keeps the paper's assumption that a buddy/partner copy
usually survives a single node failure — ``memory_survival`` is the
probability the memory level survives one fault, seeded and
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.checkpoint.store import DiskStore, MemoryStore, Snapshot


@dataclass(frozen=True)
class MultiLevelRestore:
    """Outcome of a rollback through the level hierarchy."""

    snapshot: Snapshot | None
    level: str           # "memory", "disk" or "initial"
    read_time_s: float


class MultiLevelManager:
    """Two-level (memory + disk) checkpoint manager."""

    def __init__(
        self,
        *,
        memory_interval: int,
        disk_every: int,
        memory_survival: float = 0.9,
        seed: int = 0,
        memory: MemoryStore | None = None,
        disk: DiskStore | None = None,
    ) -> None:
        if memory_interval < 1:
            raise ValueError("memory interval must be at least one iteration")
        if disk_every < 1:
            raise ValueError("disk_every must be at least 1")
        if not 0.0 <= memory_survival <= 1.0:
            raise ValueError("memory survival must be a probability")
        self.memory_interval = memory_interval
        self.disk_every = disk_every
        self.memory_survival = memory_survival
        self.memory = memory or MemoryStore()
        self.disk = disk or DiskStore()
        self._rng = np.random.default_rng(seed)
        self.memory_writes = 0
        self.disk_writes = 0
        self.memory_restores = 0
        self.disk_restores = 0

    # ------------------------------------------------------------------
    def due(self, iteration: int) -> bool:
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return iteration > 0 and iteration % self.memory_interval == 0

    def disk_due(self, iteration: int) -> bool:
        return (
            self.due(iteration)
            and (iteration // self.memory_interval) % self.disk_every == 0
        )

    def maybe_checkpoint(self, iteration: int, x: np.ndarray, nranks: int):
        """Checkpoint if due; returns ``(write_time_s, wrote_disk)`` or
        ``None``.  A disk-due checkpoint pays both levels' costs (the
        flush rides on the memory copy)."""
        if not self.due(iteration):
            return None
        self.memory.save(iteration, x)
        self.memory_writes += 1
        write_s = self.memory.write_time_s(x.nbytes, nranks)
        wrote_disk = False
        if self.disk_due(iteration):
            self.disk.save(iteration, x)
            self.disk_writes += 1
            write_s += self.disk.write_time_s(x.nbytes, nranks)
            wrote_disk = True
        return write_s, wrote_disk

    def rollback(self, iteration: int, nbytes: int, nranks: int) -> MultiLevelRestore:
        """Restore from the cheapest surviving level."""
        memory_alive = bool(self._rng.random() < self.memory_survival)
        if memory_alive:
            snap = self.memory.latest_before(iteration)
            if snap is not None:
                self.memory_restores += 1
                return MultiLevelRestore(
                    snap, "memory", self.memory.read_time_s(nbytes, nranks)
                )
        snap = self.disk.latest_before(iteration)
        # a failed memory probe still costs its access latency
        wasted = self.memory.read_time_s(0, nranks) if not memory_alive else 0.0
        if snap is not None:
            self.disk_restores += 1
            return MultiLevelRestore(
                snap, "disk", wasted + self.disk.read_time_s(nbytes, nranks)
            )
        return MultiLevelRestore(
            None, "initial", wasted + self.disk.read_time_s(nbytes, nranks)
        )
