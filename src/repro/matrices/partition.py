"""Block-row partitioning (Figure 2a).

The matrix A, the iterate x and the right-hand side b are partitioned to
``p`` processes in contiguous row blocks: process ``p_i`` owns rows
``[start_i, stop_i)`` of A and the matching entries of x and b.  Blocks
are as equal as possible (the first ``n % p`` blocks get one extra row),
which is the standard PETSc/RAPtor layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class BlockRowPartition:
    """Contiguous near-equal row blocks of an ``n``-row system over
    ``nranks`` processes."""

    n: int
    nranks: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("matrix must have at least one row")
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        if self.nranks > self.n:
            # An empty partition is never valid: a rank owning zero rows
            # has no diagonal block to recover and a zero-flop SpMV the
            # cost model cannot price, so fail loudly at construction
            # instead of letting downstream code skip the empty blocks.
            raise ValueError(
                f"cannot split {self.n} rows over {self.nranks} ranks: "
                f"{self.nranks - self.n} ranks would own empty partitions; "
                f"use nranks <= {self.n} or a larger matrix"
            )

    # ------------------------------------------------------------------
    def start_of(self, rank: int) -> int:
        self._check(rank)
        base, extra = divmod(self.n, self.nranks)
        return rank * base + min(rank, extra)

    def stop_of(self, rank: int) -> int:
        self._check(rank)
        return self.start_of(rank) + self.size_of(rank)

    def size_of(self, rank: int) -> int:
        self._check(rank)
        base, extra = divmod(self.n, self.nranks)
        return base + (1 if rank < extra else 0)

    def slice_of(self, rank: int) -> slice:
        return slice(self.start_of(rank), self.stop_of(rank))

    def range_of(self, rank: int) -> range:
        return range(self.start_of(rank), self.stop_of(rank))

    # ------------------------------------------------------------------
    def owner_of(self, row: int) -> int:
        """The rank owning global row ``row``."""
        if not 0 <= row < self.n:
            raise IndexError(f"row {row} out of range [0, {self.n})")
        base, extra = divmod(self.n, self.nranks)
        boundary = extra * (base + 1)
        if row < boundary:
            return row // (base + 1)
        return extra + (row - boundary) // base

    def owners_of(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner_of`."""
        rows = np.asarray(rows)
        if rows.size and (rows.min() < 0 or rows.max() >= self.n):
            raise IndexError("row index out of range")
        base, extra = divmod(self.n, self.nranks)
        boundary = extra * (base + 1)
        low = rows // (base + 1)
        high = extra + (rows - boundary) // max(base, 1)
        return np.where(rows < boundary, low, high).astype(np.int64)

    # ------------------------------------------------------------------
    # The arrays are derived from two immutable ints, so they are cached
    # per instance (``cached_property`` writes the instance ``__dict__``
    # directly, which frozen dataclasses permit).  They are handed out
    # read-only so the cache cannot be corrupted through a view.
    @cached_property
    def starts(self) -> np.ndarray:
        base, extra = divmod(self.n, self.nranks)
        ranks = np.arange(self.nranks)
        out = ranks * base + np.minimum(ranks, extra)
        out.flags.writeable = False
        return out

    @cached_property
    def sizes(self) -> np.ndarray:
        base, extra = divmod(self.n, self.nranks)
        out = base + (np.arange(self.nranks) < extra).astype(np.int64)
        out.flags.writeable = False
        return out

    @property
    def max_block(self) -> int:
        return int(self.sizes.max())

    def __iter__(self):
        return (self.slice_of(r) for r in range(self.nranks))

    def _check(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise IndexError(f"rank {rank} out of range [0, {self.nranks})")
