"""Content-keyed problem-setup cache.

Building an experiment's problem is expensive relative to solving it
fast: generating a suite matrix, analysing the halo structure of its
:class:`~repro.matrices.distributed.DistributedMatrix`, and measuring
:class:`~repro.core.cg.IterationCosts` all repeat identically across
campaign cells, benchmark scripts and tests.  This module memoizes all
three behind content keys so a 14-matrix × 6-scheme sweep builds each
problem once.

Two layers:

* **In-process LRU** — always on (kill switch: ``REPRO_PROBLEM_CACHE=0``).
  Safe to share because every cached object is immutable by contract:
  matrices are never written after construction, ``DistributedMatrix``
  only grows lazily-computed read-only views, and ``IterationCosts`` is
  a frozen dataclass.
* **On-disk store** under ``.repro-cache/problems/`` — suite matrices
  and measured costs persist across processes (campaign workers, CI
  steps).  ``REPRO_CACHE=0`` disables it, ``REPRO_CACHE_DIR`` relocates
  the root; both knobs are shared with ``benchmarks/common.py`` and the
  campaign result store.  Files are written atomically (tmp + rename)
  and unreadable entries are silently rebuilt.

Keys are content fingerprints, not identities: a matrix is keyed by a
BLAKE2 digest of its CSR structure and values (cached on the instance),
so equal matrices hit the same entry no matter how they were built, and
any change to a generator invalidates cleanly.  Float data round-trips
``.npz`` exactly, which keeps cache hits bit-identical to cold builds —
campaign serial↔parallel equality does not depend on cache state.
"""

from __future__ import annotations

import hashlib
import os
import zipfile
from collections import OrderedDict
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.matrices.distributed import DistributedMatrix
from repro.matrices.partition import BlockRowPartition

_FP_ATTR = "_repro_fingerprint"
_MISS = object()

#: What a corrupt / truncated / concurrently-written ``.npz`` entry can
#: raise.  Deliberately narrow: a broad ``except Exception`` here would
#: also swallow *control* exceptions raised by signal handlers mid-load
#: (e.g. the campaign runner's SIGALRM-driven ``CellTimeout``), turning
#: a timeout into a silent cache rebuild.
_CORRUPT_ENTRY_ERRORS = (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile)


def matrix_fingerprint(a) -> str:
    """Stable content digest of a sparse matrix (cached on the instance)."""
    cached = getattr(a, _FP_ATTR, None)
    if cached is not None:
        return cached
    m = a if (sp.issparse(a) and getattr(a, "format", None) == "csr") else sp.csr_matrix(a)
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(m.shape).encode())
    h.update(np.ascontiguousarray(m.indptr).tobytes())
    h.update(np.ascontiguousarray(m.indices).tobytes())
    h.update(np.ascontiguousarray(m.data).tobytes())
    fp = h.hexdigest()
    try:
        setattr(a, _FP_ATTR, fp)
    except AttributeError:  # pragma: no cover - exotic matrix types
        pass
    return fp


class _LRU:
    """Tiny LRU with hit/miss counters (single-threaded use)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._d: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._d[key]
        except KeyError:
            self.misses += 1
            return _MISS
        self._d.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._d[key] = value
        self._d.move_to_end(key)
        while len(self._d) > self.capacity:
            self._d.popitem(last=False)

    def clear(self) -> None:
        self._d.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._d)


#: Suite matrices are a few MB each; distributed views hold per-rank
#: blocks (~2x the matrix), so they get a smaller budget.
_matrices = _LRU(32)
_dmats = _LRU(16)
_costs = _LRU(256)
_horizons = _LRU(256)


def _memory_enabled() -> bool:
    return os.environ.get("REPRO_PROBLEM_CACHE", "1") != "0"


def _disk_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))


def problems_dir() -> Path:
    return cache_root() / "problems"


def _digest(key: tuple) -> str:
    return hashlib.blake2b(repr(key).encode(), digest_size=16).hexdigest()


def _atomic_savez(path: Path, **arrays) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    try:
        with open(tmp, "wb") as f:
            np.savez(f, **arrays)
        os.replace(tmp, path)
    except OSError:  # pragma: no cover - read-only cache dir etc.
        tmp.unlink(missing_ok=True)


def _try_load(path: Path):
    if not path.exists():
        return None
    try:
        return np.load(path)
    except _CORRUPT_ENTRY_ERRORS:  # corrupt / truncated entry: rebuild
        return None


# ----------------------------------------------------------------------
# suite matrices
# ----------------------------------------------------------------------
def cached_suite_build(name: str, scale: float, spec) -> sp.csr_matrix:
    """Memoized ``spec.build(scale)`` (both layers).

    The key includes the spec's full repr, so recalibrating a generator
    parameter invalidates stale entries instead of serving them.
    """
    key = ("suite", name, float(scale), repr(spec))
    if _memory_enabled():
        m = _matrices.get(key)
        if m is not _MISS:
            return m
    m = None
    path = problems_dir() / f"{name}-{_digest(key)}.npz" if _disk_enabled() else None
    if path is not None:
        z = _try_load(path)
        if z is not None:
            with z:
                try:
                    m = sp.csr_matrix(
                        (z["data"], z["indices"], z["indptr"]),
                        shape=tuple(z["shape"]),
                    )
                except _CORRUPT_ENTRY_ERRORS:
                    m = None
    if m is None:
        m = spec.build(scale)
        if path is not None:
            _atomic_savez(
                path,
                data=m.data,
                indices=m.indices,
                indptr=m.indptr,
                shape=np.asarray(m.shape),
            )
    matrix_fingerprint(m)
    if _memory_enabled():
        _matrices.put(key, m)
    return m


# ----------------------------------------------------------------------
# distributed views (halo analysis)
# ----------------------------------------------------------------------
def distributed_matrix(a, nranks: int) -> DistributedMatrix:
    """Memoized, fully warmed block-row distribution of ``a``.

    In-process only: the halo analysis is pure derived structure, cheap
    to rebuild once per process but expensive once per cell.
    """
    if not _memory_enabled():
        dmat = DistributedMatrix(a, BlockRowPartition(a.shape[0], nranks))
        dmat.warm()
        return dmat
    key = ("dmat", matrix_fingerprint(a), int(nranks))
    dmat = _dmats.get(key)
    if dmat is _MISS:
        dmat = DistributedMatrix(a, BlockRowPartition(a.shape[0], nranks))
        dmat.warm()
        _dmats.put(key, dmat)
    return dmat


# ----------------------------------------------------------------------
# measured iteration costs
# ----------------------------------------------------------------------
def iteration_costs(dmat: DistributedMatrix, comm, *, preconditioned: bool):
    """Memoized ``IterationCosts.measure`` (both layers).

    Costs are measured at f_max; DVFS derating happens in the solver on
    a per-solve copy, so cached entries are frequency-independent.  The
    key captures everything the measurement reads: matrix content,
    rank count, machine and network specs, and the preconditioner flag.
    """
    from repro.core.cg import IterationCosts

    key = (
        "costs",
        matrix_fingerprint(dmat.a),
        int(dmat.nranks),
        repr(comm.machine),
        repr(comm.network),
        bool(preconditioned),
    )
    if _memory_enabled():
        costs = _costs.get(key)
        if costs is not _MISS:
            return costs
    costs = None
    path = problems_dir() / f"costs-{_digest(key)}.npz" if _disk_enabled() else None
    if path is not None:
        z = _try_load(path)
        if z is not None:
            with z:
                try:
                    costs = IterationCosts(
                        compute_s=np.asarray(z["compute_s"], dtype=np.float64),
                        halo_s=float(z["halo_s"]),
                        allreduce_s=float(z["allreduce_s"]),
                        bytes_per_iter=float(z["bytes_per_iter"]),
                    )
                except _CORRUPT_ENTRY_ERRORS:
                    costs = None
    if costs is None:
        costs = IterationCosts.measure(dmat, comm, preconditioned=preconditioned)
        if path is not None:
            _atomic_savez(
                path,
                compute_s=costs.compute_s,
                halo_s=np.float64(costs.halo_s),
                allreduce_s=np.float64(costs.allreduce_s),
                bytes_per_iter=np.float64(costs.bytes_per_iter),
            )
    if _memory_enabled():
        _costs.put(key, costs)
    return costs


# ----------------------------------------------------------------------
# fault-free horizons
# ----------------------------------------------------------------------
def fault_free_horizon(
    dmat: DistributedMatrix,
    b,
    *,
    tol: float,
    max_iters: int,
    preconditioner: str | None = None,
    seed: int = 0,
) -> int:
    """Memoized fault-free CG iteration count (both layers).

    This is the one numeric solve the analytic engine cannot avoid: the
    convergence horizon ``H`` that anchors every closed-form model.  CG
    iterates on *global* vectors, so the count is independent of how the
    matrix is partitioned — the key deliberately excludes ``nranks``,
    letting one probe serve a whole weak-scaling column.  ``seed`` tags
    the right-hand side (campaigns derive ``b`` from the config seed);
    failed probes raise and are never cached.
    """
    from repro.core.cg import DistributedCG
    from repro.core.errors import ConvergenceError

    key = (
        "horizon",
        matrix_fingerprint(dmat.a),
        int(seed),
        float(tol),
        int(max_iters),
        str(preconditioner),
    )
    if _memory_enabled():
        h = _horizons.get(key)
        if h is not _MISS:
            return h
    h = None
    path = problems_dir() / f"horizon-{_digest(key)}.npz" if _disk_enabled() else None
    if path is not None:
        z = _try_load(path)
        if z is not None:
            with z:
                try:
                    h = int(z["iterations"])
                except _CORRUPT_ENTRY_ERRORS:
                    h = None
    if h is None:
        probe = DistributedCG(
            dmat, b, tol=tol, max_iters=max_iters, preconditioner=preconditioner
        )
        h = probe.solve_fault_free()
        if not probe.converged:
            raise ConvergenceError(
                tol=tol,
                final_residual=probe.relative_residual,
                iterations=h,
            )
        if path is not None:
            _atomic_savez(path, iterations=np.int64(h))
    if _memory_enabled():
        _horizons.put(key, h)
    return h


# ----------------------------------------------------------------------
# maintenance / introspection
# ----------------------------------------------------------------------
def cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size counters per cache layer (for logs and tests)."""
    return {
        name: {"hits": lru.hits, "misses": lru.misses, "entries": len(lru)}
        for name, lru in (
            ("matrices", _matrices),
            ("distributed", _dmats),
            ("costs", _costs),
            ("horizons", _horizons),
        )
    }


def clear_memory_caches() -> None:
    """Drop every in-process cache entry (tests; not the disk store)."""
    _matrices.clear()
    _dmats.clear()
    _costs.clear()
    _horizons.clear()
