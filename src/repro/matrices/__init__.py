"""Problem substrate: SPD matrices, partitions, distributed views.

Provides the block-row partition of Figure 2, synthetic SPD generators
mirroring the character of the paper's SuiteSparse suite (Table 3), and a
distributed-matrix view exposing exactly the per-rank blocks the recovery
schemes need (``A_{p_i,p_i}``, ``A_{p_i,:}``, halo structure).
"""

from repro.matrices.partition import BlockRowPartition
from repro.matrices.generators import (
    stencil_5pt,
    banded_spd,
    irregular_spd,
    tridiagonal_spd,
)
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.suite import MatrixSpec, SUITE, build, names

__all__ = [
    "BlockRowPartition",
    "stencil_5pt",
    "banded_spd",
    "irregular_spd",
    "tridiagonal_spd",
    "DistributedMatrix",
    "MatrixSpec",
    "SUITE",
    "build",
    "names",
]
