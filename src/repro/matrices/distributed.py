"""Distributed view of a block-row partitioned sparse matrix.

Exposes exactly the per-rank pieces the solver and the recovery schemes
operate on (Figure 2, Equations 17-21):

* ``row_block(i)``   — A_{p_i,:}, the rows owned by rank i;
* ``diag_block(i)``  — A_{p_i,p_i}, the local square block LI solves with;
* halo structure     — which remote x entries each rank's SpMV needs,
  giving the per-iteration communication volumes of the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np
import scipy.sparse as sp

from repro.matrices.partition import BlockRowPartition

#: Bytes per vector entry exchanged (float64).
BYTES_PER_ENTRY = 8


@dataclass(frozen=True)
class RankBlocks:
    """Cached per-rank matrix pieces."""

    rows: sp.csr_matrix          # A_{p_i,:}
    diag: sp.csr_matrix          # A_{p_i,p_i}
    halo_recv_counts: dict[int, int]  # owner rank -> #entries of x needed


@dataclass(frozen=True)
class PackedBlock:
    """A rank's row block with its columns compressed for local SpMV.

    ``mat`` is ``A_{p_i,:}`` restricted to the columns it actually
    touches; ``cols`` maps the packed column index back to the global
    one.  ``x[cols]`` is exactly the rank's halo gather (owned entries
    plus remote halo entries, in global order), so ``mat @ x[cols]``
    is the rank's local SpMV — and because packing preserves each
    row's nonzero storage order, it is *bit-identical* to the global
    SpMV restricted to the rank's rows (the ``loop`` backend's
    equivalence argument, DESIGN.md §5j).
    """

    mat: sp.csr_matrix   # A_{p_i, cols}
    cols: np.ndarray     # global column indices, sorted


class DistributedMatrix:
    """A global CSR matrix plus its block-row distribution."""

    def __init__(self, a: sp.spmatrix, partition: BlockRowPartition) -> None:
        a = sp.csr_matrix(a)
        if a.shape[0] != a.shape[1]:
            raise ValueError("matrix must be square")
        if a.shape[0] != partition.n:
            raise ValueError(
                f"partition over n={partition.n} does not match matrix of "
                f"order {a.shape[0]}"
            )
        a.sort_indices()
        self.a = a
        self.partition = partition
        self._blocks: dict[int, RankBlocks] = {}
        self._packed: dict[int, PackedBlock] = {}

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def nranks(self) -> int:
        return self.partition.nranks

    @property
    def nnz(self) -> int:
        return self.a.nnz

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Global SpMV (the numerics; costs are charged separately)."""
        return self.a @ x

    # ------------------------------------------------------------------
    def blocks(self, rank: int) -> RankBlocks:
        """Per-rank blocks, computed once and cached."""
        if rank not in self._blocks:
            sl = self.partition.slice_of(rank)
            rows = self.a[sl, :].tocsr()
            diag = rows[:, sl].tocsr()
            cols = np.unique(rows.indices)
            external = cols[(cols < sl.start) | (cols >= sl.stop)]
            owners = self.partition.owners_of(external) if external.size else np.array([], dtype=np.int64)
            # owners is non-decreasing (external is sorted and ownership
            # is monotone in the column index), so the unique owners come
            # out in the same order the per-element loop inserted them.
            uniq, cnts = np.unique(owners, return_counts=True)
            counts = {int(o): int(c) for o, c in zip(uniq, cnts)}
            self._blocks[rank] = RankBlocks(rows, diag, counts)
        return self._blocks[rank]

    def warm(self) -> "DistributedMatrix":
        """Eagerly compute every rank's blocks and the halo volumes.

        The problem cache (:mod:`repro.matrices.cache`) calls this so a
        shared instance is fully analysed once instead of lazily inside
        the first solve that touches each rank."""
        for rank in range(self.nranks):
            self.blocks(rank)
        _ = self.local_nnz, self.spmv_flops
        _ = self.halo_pair_bytes, self.halo_bytes_total
        return self

    def packed_block(self, rank: int) -> PackedBlock:
        """Column-compressed ``A_{p_i,:}`` for the ``loop`` backend.

        Computed lazily and cached per rank.  Deliberately *not* part of
        :meth:`warm`: only the ``loop`` backend reads it, so the default
        setup path pays nothing for it.
        """
        if rank not in self._packed:
            rows = self.blocks(rank).rows
            cols = np.unique(rows.indices)
            # searchsorted over the sorted unique columns is monotone,
            # so per-row nonzero order survives the renumbering.
            local = np.searchsorted(cols, rows.indices).astype(
                rows.indices.dtype
            )
            mat = sp.csr_matrix(
                (rows.data, local, rows.indptr),
                shape=(rows.shape[0], int(cols.size)),
            )
            self._packed[rank] = PackedBlock(mat=mat, cols=cols)
        return self._packed[rank]

    def row_block(self, rank: int) -> sp.csr_matrix:
        """A_{p_i,:} — all columns of the rows owned by ``rank``."""
        return self.blocks(rank).rows

    def diag_block(self, rank: int) -> sp.csr_matrix:
        """A_{p_i,p_i} — the square diagonal block of ``rank``."""
        return self.blocks(rank).diag

    def col_block(self, rank: int) -> sp.csr_matrix:
        """A_{:,p_i}.  For the SPD matrices under study this equals
        ``row_block(rank).T`` (used by LSI, Equation 21)."""
        return self.row_block(rank).T.tocsr()

    # ------------------------------------------------------------------
    # cost-model inputs
    # ------------------------------------------------------------------
    @cached_property
    def local_nnz(self) -> np.ndarray:
        """Nonzeros per rank (drives per-rank SpMV flops)."""
        indptr = self.a.indptr
        starts = self.partition.starts
        stops = starts + self.partition.sizes
        return (indptr[stops] - indptr[starts]).astype(np.int64)

    @cached_property
    def spmv_flops(self) -> np.ndarray:
        """Per-rank flops of one SpMV: 2 * local nnz."""
        return 2 * self.local_nnz

    @cached_property
    def halo_pair_bytes(self) -> dict[tuple[int, int], float]:
        """Directed halo volumes ``(src, dst) -> bytes`` for one SpMV.

        ``dst`` needs ``count`` entries of x owned by ``src`` to multiply
        its off-diagonal columns.
        """
        out: dict[tuple[int, int], float] = {}
        for rank in range(self.nranks):
            for owner, count in self.blocks(rank).halo_recv_counts.items():
                out[(owner, rank)] = count * BYTES_PER_ENTRY
        return out

    @cached_property
    def halo_bytes_total(self) -> float:
        return sum(self.halo_pair_bytes.values())

    def rank_of_row(self, row: int) -> int:
        return self.partition.owner_of(row)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DistributedMatrix(n={self.n}, nnz={self.nnz}, "
            f"nranks={self.nranks})"
        )
