"""The benchmark matrix suite, mirroring Table 3.

Each entry records the paper's SuiteSparse properties (#rows, nnz/row,
problem kind, fault-free iterations at tol 1e-12) next to the synthetic
stand-in we generate.  Stand-ins are scaled down (~x10 in rows for the
large problems, iteration counts in the low thousands instead of tens of
thousands) so the full suite runs in minutes; ``build(name, scale=...)``
re-scales toward paper size when desired.

The stand-ins preserve what the paper's conclusions depend on:

* **nnz/row** — drives SpMV cost, halo volume, and reconstruction cost;
* **structure** — banded/stencil (regular) vs random (irregular), which
  controls how accurate LI/LSI's interpolants are (Section 5.2);
* **convergence class** — fast (hundreds of iterations), medium
  (~1k), slow (several k), tuned via diagonal dominance.

Our experiments use tol 1e-8 instead of the paper's 1e-12 because the
stand-ins' condition numbers are scaled down along with their iteration
counts; normalized-to-fault-free results are insensitive to this choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import scipy.sparse as sp

from repro.matrices.generators import banded_spd, irregular_spd, stencil_5pt


@dataclass(frozen=True)
class MatrixSpec:
    """One row of Table 3 plus the recipe for its synthetic stand-in."""

    name: str
    kind: str                     # paper's "Problem Kind" column
    paper_rows: int
    paper_nnz_per_row: int
    paper_iters: int              # paper's fault-free #Iters at tol 1e-12
    generator: Literal["banded", "irregular", "stencil"]
    rows: int                     # stand-in size at scale=1
    nnz_per_row: int              # stand-in density target
    dominance: float = 1e-3
    scaling_spread: float = 0.0
    value_spread: float = 0.0
    longrange_scale: float = 0.3
    seed: int = 0

    def build(self, scale: float = 1.0) -> sp.csr_matrix:
        """Generate the stand-in matrix.

        ``scale`` multiplies the row count (the 5-point stencil scales its
        grid edge by ``sqrt(scale)`` so rows scale by ``scale``).
        """
        if scale <= 0:
            raise ValueError("scale must be positive")
        n = max(16, int(round(self.rows * scale)))
        if self.generator == "banded":
            return banded_spd(
                n,
                self.nnz_per_row,
                dominance=self.dominance,
                scaling_spread=self.scaling_spread,
                seed=self.seed,
            )
        if self.generator == "irregular":
            return irregular_spd(
                n,
                self.nnz_per_row,
                dominance=self.dominance,
                scaling_spread=self.scaling_spread,
                seed=self.seed,
                value_spread=self.value_spread,
                longrange_scale=self.longrange_scale,
            )
        if self.generator == "stencil":
            nx = max(4, int(round((self.rows * scale) ** 0.5)))
            return stencil_5pt(nx)
        raise ValueError(f"unknown generator {self.generator!r}")

    @property
    def is_regular(self) -> bool:
        return self.generator in ("banded", "stencil")


#: Table 3, in paper order.  ``dominance`` / ``scaling_spread`` values
#: are calibrated (bisection on measured fault-free CG iterations at tol
#: 1e-8) so each stand-in lands in its matrix's convergence class; the
#: comment after each entry records the calibrated iteration count (the
#: stand-in analogue of Table 3's #Iters column).
SUITE: dict[str, MatrixSpec] = {
    s.name: s
    for s in [
        # The scaling_spread values also encode each matrix's recovery
        # differentiation class: the paper reports LI/LSI/CR ~ F0/FI for
        # bcsstk06-like matrices (here: low spread) but much better for
        # ex15/t2dahe-like ones (here: high spread), because heterogeneous
        # row scales make inaccurate fills far more expensive to re-converge.
        MatrixSpec("bcsstk06", "structural", 420, 19, 4476,
                   "banded", rows=6031, nnz_per_row=19,
                   dominance=1e-6, scaling_spread=0.25, seed=1),     # ~1960
        MatrixSpec("msc01050", "structural", 1050, 25, 35765,
                   "banded", rows=1672, nnz_per_row=25,
                   dominance=1e-6, scaling_spread=0.90, seed=2),     # ~4710
        MatrixSpec("ex10hs", "CFD", 2548, 22, 3217,
                   "irregular", rows=2548, nnz_per_row=22,
                   dominance=1e-6, scaling_spread=0.90,
                   value_spread=0.6, longrange_scale=0.05, seed=3),  # ~1440
        MatrixSpec("bcsstk16", "structural", 4884, 59, 553,
                   "banded", rows=1414, nnz_per_row=59,
                   dominance=1e-6, scaling_spread=0.60, seed=4),     # ~590
        MatrixSpec("ex15", "CFD", 6867, 17, 1074,
                   "irregular", rows=1262, nnz_per_row=17,
                   dominance=1e-6, scaling_spread=0.90,
                   value_spread=0.5, longrange_scale=0.2, seed=5),   # ~940
        MatrixSpec("Kuu", "structural", 7102, 24, 849,
                   "banded", rows=660, nnz_per_row=24,
                   dominance=1e-6, scaling_spread=0.70, seed=6),     # ~790
        MatrixSpec("t2dahe", "model reduction", 11445, 15, 82098,
                   "banded", rows=1532, nnz_per_row=15,
                   dominance=1e-6, scaling_spread=1.00, seed=7),     # ~5640
        MatrixSpec("crystm02", "materials", 13965, 23, 1154,
                   "banded", rows=2438, nnz_per_row=23,
                   dominance=1e-6, scaling_spread=0.60, seed=8),     # ~2220
        MatrixSpec("wathen100", "random 2D/3D", 30401, 16, 355,
                   "banded", rows=4000, nnz_per_row=16,
                   dominance=3.1171e-4, scaling_spread=0.0, seed=9),  # ~384
        MatrixSpec("cvxbqp1", "optimization", 50000, 7, 11863,
                   "irregular", rows=7625, nnz_per_row=7,
                   dominance=1e-6, scaling_spread=0.90,
                   value_spread=0.3, longrange_scale=0.2, seed=10),  # ~2690
        MatrixSpec("Andrews", "graphics", 60000, 13, 216,
                   "irregular", rows=6000, nnz_per_row=13,
                   dominance=1e-6, scaling_spread=0.4875,
                   value_spread=0.3, seed=11),                       # ~222
        MatrixSpec("nd24k", "2D/3D", 72000, 399, 10019,
                   "banded", rows=4000, nnz_per_row=199,
                   dominance=1e-6, scaling_spread=0.8125, seed=12),  # ~1980
        MatrixSpec("x104", "structure", 108384, 80, 96704,
                   "irregular", rows=6000, nnz_per_row=80,
                   dominance=1e-6, scaling_spread=1.0969,
                   value_spread=1.2, seed=13),                       # ~5020
        MatrixSpec("stencil5", "structure", 640000, 5, 3162,
                   "stencil", rows=10000, nnz_per_row=5, seed=14),   # ~250
    ]
}


def names() -> list[str]:
    """Suite matrix names in Table 3 order."""
    return list(SUITE)


def build(name: str, scale: float = 1.0, *, cache: bool = True) -> sp.csr_matrix:
    """Build a suite matrix by name.

    Served through the content-keyed problem cache
    (:mod:`repro.matrices.cache`) by default, so campaign cells,
    benchmarks and tests that ask for the same (name, scale) share one
    build.  The returned matrix is shared — callers must not mutate it;
    pass ``cache=False`` for a private copy.
    """
    try:
        spec = SUITE[name]
    except KeyError:
        raise KeyError(f"unknown matrix {name!r}; known: {', '.join(SUITE)}") from None
    if cache:
        from repro.matrices.cache import cached_suite_build

        return cached_suite_build(name, scale, spec)
    return spec.build(scale)


def spec(name: str) -> MatrixSpec:
    try:
        return SUITE[name]
    except KeyError:
        raise KeyError(f"unknown matrix {name!r}; known: {', '.join(SUITE)}") from None
