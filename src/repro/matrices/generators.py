"""Synthetic SPD matrix generators.

The paper's suite (Table 3) comes from the SuiteSparse collection, which
is not reachable offline.  These generators reproduce the *properties*
that drive the paper's conclusions: size, nonzeros per row, regular
(banded / stencil) versus irregular sparsity, and convergence speed.

Convergence control
-------------------
CG's iteration count is governed by the spectrum's *continuum* low end,
so the generators build matrices with physical locality:

* **banded** matrices couple each row to its ``k`` nearest neighbours
  with negative weights — a 1D elliptic operator whose condition number
  grows like ``(n/k)^2``;
* **irregular** matrices keep a nearest-neighbour backbone (every
  discretised physical problem has one) and add random long-range
  entries, which perturb the sparsity pattern (hurting interpolation
  accuracy and halo locality) without destroying the continuum;
* ``dominance`` (delta) adds ``delta * sum|offdiag|`` of diagonal slack,
  *capping* the condition number near ``2/delta`` — larger delta means
  faster convergence;
* ``scaling_spread`` (sigma) applies a log-normal congruence ``D A D``,
  stretching the spectrum by roughly ``exp(4 sigma)`` for genuinely
  ill-conditioned, slowly converging systems (t2dahe, msc01050, x104
  classes) while preserving SPD-ness and the sparsity pattern.

Calibrated (delta, sigma) pairs for each Table-3 stand-in live in
:mod:`repro.matrices.suite`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _finalize_spd(
    pattern: sp.coo_matrix,
    n: int,
    dominance: float,
    *,
    scaling_spread: float = 0.0,
    seed: int = 0,
) -> sp.csr_matrix:
    """Symmetrise off-diagonal values, add a strictly dominant positive
    diagonal, and optionally apply a log-normal congruence scaling."""
    if dominance <= 0:
        raise ValueError("dominance must be positive")
    if scaling_spread < 0:
        raise ValueError("scaling spread must be non-negative")
    off = sp.coo_matrix((pattern.data, (pattern.row, pattern.col)), shape=(n, n))
    off = (off + off.T) * 0.5
    off = off.tocsr()
    off.setdiag(0.0)
    off.eliminate_zeros()
    rowsum = np.asarray(np.abs(off).sum(axis=1)).ravel()
    # Rows with no off-diagonal entries still need a positive diagonal.
    floor = rowsum[rowsum > 0].mean() if np.any(rowsum > 0) else 1.0
    diag = (1.0 + dominance) * np.maximum(rowsum, 1e-3 * floor)
    a = (off + sp.diags(diag)).tocsr()
    if scaling_spread > 0:
        rng = np.random.default_rng(seed + 104729)
        d = np.exp(scaling_spread * rng.standard_normal(n))
        ds = sp.diags(d)
        a = (ds @ a @ ds).tocsr()
    a.sort_indices()
    return a


def tridiagonal_spd(n: int, *, dominance: float = 0.05) -> sp.csr_matrix:
    """1D Laplacian-like SPD tridiagonal matrix."""
    if n < 2:
        raise ValueError("n must be >= 2")
    off = -np.ones(n - 1)
    pattern = sp.diags([off, off], [-1, 1]).tocoo()
    return _finalize_spd(pattern, n, dominance)


def stencil_5pt(nx: int, ny: int | None = None) -> sp.csr_matrix:
    """The 2D Poisson 5-point stencil on an ``nx x ny`` grid.

    This is the paper's "5-point stencil" matrix (Table 3, last row).  It
    is the exact discrete Laplacian (not dominance-tuned): SPD with
    condition number ~ O(nx^2), so CG needs ~ O(nx) iterations.
    """
    if nx < 2:
        raise ValueError("nx must be >= 2")
    ny = ny if ny is not None else nx
    if ny < 2:
        raise ValueError("ny must be >= 2")
    ex = np.ones(nx)
    ey = np.ones(ny)
    tx = sp.diags([-ex[:-1], 2 * ex, -ex[:-1]], [-1, 0, 1])
    ty = sp.diags([-ey[:-1], 2 * ey, -ey[:-1]], [-1, 0, 1])
    a = sp.kronsum(tx, ty).tocsr()
    a.sort_indices()
    return a


def banded_spd(
    n: int,
    nnz_per_row: int,
    *,
    dominance: float = 0.1,
    scaling_spread: float = 0.0,
    seed: int = 0,
) -> sp.csr_matrix:
    """Regular banded SPD matrix with ~``nnz_per_row`` nonzeros per row.

    Models the structural-engineering matrices of Table 3 (bcsstk*, Kuu,
    crystm02, ...): contiguous symmetric diagonals ``1..k`` with negative
    nearest-neighbour weights — a 1D elliptic operator with bandwidth
    ``k = (nnz_per_row - 1) / 2``.
    """
    if n < 4:
        raise ValueError("n must be >= 4")
    if nnz_per_row < 3:
        raise ValueError("need at least 3 nonzeros per row")
    rng = np.random.default_rng(seed)
    k = min((nnz_per_row - 1) // 2, n - 1)  # contiguous diagonals per side
    diags = []
    offs = []
    for o in range(1, k + 1):
        vals = -(0.2 + rng.random(n - o))
        diags.append(vals)
        offs.append(o)
    pattern = sp.diags(diags, offs, shape=(n, n)).tocoo()
    return _finalize_spd(
        pattern, n, dominance, scaling_spread=scaling_spread, seed=seed
    )


def irregular_spd(
    n: int,
    nnz_per_row: int,
    *,
    dominance: float = 0.1,
    scaling_spread: float = 0.0,
    seed: int = 0,
    value_spread: float = 1.0,
    longrange_scale: float = 0.3,
) -> sp.csr_matrix:
    """Irregular SPD matrix: random long-range sparsity over a local
    backbone, heterogeneous magnitudes.

    Models Table 3's irregular problems (Andrews, cvxbqp1, x104, ...).
    The tridiagonal backbone keeps the spectrum's continuum low end (see
    module docstring); random long-range entries of relative magnitude
    ``longrange_scale`` perturb the pattern, which is what degrades the
    accuracy of interpolation-based recovery on irregular matrices
    (Section 5.2).  ``value_spread`` widens the log-scale spread of those
    entries' magnitudes.
    """
    if n < 4:
        raise ValueError("n must be >= 4")
    if nnz_per_row < 3:
        raise ValueError("need at least 3 nonzeros per row")
    if value_spread < 0:
        raise ValueError("value_spread must be non-negative")
    if longrange_scale <= 0:
        raise ValueError("longrange scale must be positive")
    rng = np.random.default_rng(seed)
    # Two backbone entries per row; the rest of the budget is random
    # entries (each sampled entry lands in two rows after symmetrisation).
    k = max(1, (nnz_per_row - 3) // 2)
    rows = np.repeat(np.arange(n), k)
    cols = rng.integers(0, n, size=rows.size)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    mags = longrange_scale * np.exp(value_spread * rng.standard_normal(rows.size))
    signs = rng.choice([-1.0, 1.0], size=rows.size, p=[0.8, 0.2])
    vals = signs * mags
    spine = np.arange(n - 1)
    spine_vals = -(0.2 + rng.random(n - 1))
    rows = np.concatenate([rows, spine])
    cols = np.concatenate([cols, spine + 1])
    vals = np.concatenate([vals, spine_vals])
    pattern = sp.coo_matrix((vals, (rows, cols)), shape=(n, n))
    # duplicate (i, j) pairs sum, which is fine for a random pattern
    return _finalize_spd(
        pattern, n, dominance, scaling_spread=scaling_spread, seed=seed
    )


def is_spd_sample(a: sp.spmatrix, *, seed: int = 0, trials: int = 8) -> bool:
    """Cheap SPD sanity check: symmetry plus positive Rayleigh quotients
    on random probes.  Used by tests; not a proof, but the generators'
    construction (dominant diagonal, congruence scaling) provides the
    actual guarantee."""
    if (abs(a - a.T) > 1e-10 * max(1.0, abs(a).max())).nnz != 0:
        return False
    rng = np.random.default_rng(seed)
    n = a.shape[0]
    for _ in range(trials):
        v = rng.standard_normal(n)
        if float(v @ (a @ v)) <= 0:
            return False
    return True
