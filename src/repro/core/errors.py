"""Exceptions raised by the solver and the experiment harness."""

from __future__ import annotations


class ConvergenceError(RuntimeError):
    """A solve that was required to converge did not.

    Raised when a fault-free baseline (the normalization base of every
    figure in the paper) fails to reach the configured tolerance within
    the iteration budget.  Carries enough context to diagnose the cell
    without re-running it.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        matrix: str | None = None,
        tol: float | None = None,
        final_residual: float | None = None,
        iterations: int | None = None,
    ) -> None:
        self.matrix = matrix
        self.tol = tol
        self.final_residual = final_residual
        self.iterations = iterations
        if message is None:
            parts = ["solve did not converge"]
            if matrix is not None:
                parts.append(f"on {matrix!r}")
            if iterations is not None:
                parts.append(f"after {iterations} iterations")
            detail = []
            if tol is not None:
                detail.append(f"tol={tol:g}")
            if final_residual is not None:
                detail.append(f"final relative residual={final_residual:.3e}")
            message = " ".join(parts)
            if detail:
                message += f" ({', '.join(detail)})"
        super().__init__(message)
