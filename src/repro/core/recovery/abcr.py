"""Algorithm-based checkpoint-recovery (ABCR) — Pachajoa & Levonyak,
arXiv:2007.04066.

ABCR keeps the classical checkpoint/rollback *timing* structure but
replaces the storage tier with the algorithm itself: every
``interval_iters`` iterations each rank retains its block of the iterate
and the Krylov recurrence vectors in a neighbour rank's memory (one
inter-node stream, no disk).  On a fault the iterate rolls back to the
last retained copy, and instead of re-reading dynamic vectors from any
store, the recurrence vectors are *reconstructed* from the retained data
(one true-residual-style recurrence replay).  The lost iterations since
the retention point are re-executed, exactly as CR re-executes them —
what changes is the cost of the write and of the read path.

Phases charged:

* retention writes — CHECKPOINT, at the neighbour-transfer time of the
  retained blocks, at checkpoint power (memory streaming, CPUs not
  busy);
* rollback — RESTORE, the reverse transfer, at checkpoint power;
* recurrence reconstruction — RECONSTRUCT, one recurrence replay
  (restart-equivalent work) at compute power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.faults.events import FaultEvent
from repro.matrices.distributed import BYTES_PER_ENTRY
from repro.power.energy import PhaseTag

#: Vectors retained per interval: x plus the recurrence pair (r, p).
RETAINED_VECTORS = 3


@dataclass
class _Retention:
    """Write counter with the manager interface the report probes."""

    interval_iters: int
    writes: int = 0


def retention_transfer_s(services: RecoveryServices) -> float:
    """Critical-path seconds of one retention round: every rank streams
    its retained blocks concurrently, so the slowest (largest) block
    bounds the round.  Shared with the analytic engine."""
    part = services.partition
    worst = 0.0
    for rank in range(services.nranks):
        sl = part.slice_of(rank)
        nbytes = RETAINED_VECTORS * (sl.stop - sl.start) * BYTES_PER_ENTRY
        worst = max(worst, services.interconnect_p2p_s(nbytes))
    return worst


class AlgorithmBasedCheckpointRecovery(RecoveryScheme):
    """ABCR: periodic in-memory retention, reconstruction over reads."""

    name = "ABCR"
    recovers_globally = True

    def __init__(self, *, interval_iters: int) -> None:
        if interval_iters < 1:
            raise ValueError("interval must be at least one iteration")
        self._interval = interval_iters
        self.manager: _Retention | None = None
        self._snapshot_x: np.ndarray | None = None
        self._snapshot_iteration = 0
        self._transfer_s = 0.0
        self.rollback_reexecute_iters = 0
        self.recoveries = 0

    def setup(self, services: RecoveryServices) -> None:
        self.manager = _Retention(self._interval)
        self._snapshot_x = None
        self._snapshot_iteration = 0
        self._transfer_s = retention_transfer_s(services)
        self.rollback_reexecute_iters = 0
        self.recoveries = 0

    @property
    def interval_iters(self) -> int:
        return self._interval

    def next_hook_iteration(self, iteration: int) -> float:
        # The hook only acts on interval multiples, like CR.
        interval = self._interval
        return iteration + (interval - iteration % interval)

    def on_iteration_end(self, services: RecoveryServices, state: CGState) -> None:
        assert self.manager is not None, "setup() must run first"
        if state.iteration == 0 or state.iteration % self._interval != 0:
            return
        self._snapshot_x = state.x.copy()
        self._snapshot_iteration = state.iteration
        self.manager.writes += 1
        services.charge_phase(
            PhaseTag.CHECKPOINT, self._transfer_s, services.power_checkpoint_w()
        )

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        assert self.manager is not None, "setup() must run first"
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            if self._snapshot_x is None:
                state.x[:] = services.x0
                lost = state.iteration
            else:
                state.x[:] = self._snapshot_x
                lost = state.iteration - self._snapshot_iteration
            self.rollback_reexecute_iters += lost
            # The retained blocks stream back from the neighbour ranks.
            services.charge_phase(
                PhaseTag.RESTORE, self._transfer_s,
                services.power_checkpoint_w(),
            )
            # Recurrence reconstruction replaces any store read of the
            # dynamic vectors: one recurrence replay, restart-equivalent.
            services.charge_phase(
                PhaseTag.RECONSTRUCT,
                services.restart_cost_s(),
                services.power_compute_w(),
            )
        self.recoveries += 1
        return RecoveryOutcome(
            needs_restart=True, detail={"rolled_back_iters": lost}
        )
