"""Exact state reconstruction (ESR) — Pachajoa et al., arXiv:1907.13077.

ESR makes CG resilient without checkpoints or full replicas: every rank
streams redundant copies of its blocks of the search direction ``p`` and
residual ``r`` to neighbour ranks alongside the iteration it just
finished.  When a fault destroys one — or several *simultaneous* — rank
partitions, the surviving ranks hold enough redundant recurrence data to
rebuild each lost block of ``x``, ``r`` and ``p`` *exactly* (the method
of arXiv:1907.13077 reconstructs the iterate from the three-term
recurrence in exact arithmetic).  The solver then continues on its
fault-free trajectory: no restart, no rollback, no convergence delay.

The simulation stands in for the exact arithmetic with an exact copy of
the pre-fault state (the reconstruction is bitwise by construction, so
the copy *is* the reconstructed value), while the costs are priced
explicitly:

* retention — each iteration overlaps an inter-node stream of the two
  vector blocks per rank, charged as zero-wall-clock REDUNDANT energy
  through :attr:`RecoveryScheme.overlap_energy_per_iteration_j`;
* recovery — per lost block, survivors ship the redundant copies back
  (RESTORE) and replay the recurrence over the block's row panel
  (RECONSTRUCT).

Tolerant of any number of simultaneous losses (``recovers_jointly``):
every victim in the event's set is rebuilt in the one recover() call.
"""

from __future__ import annotations

from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.faults.events import FaultEvent
from repro.matrices.distributed import BYTES_PER_ENTRY
from repro.power.energy import PhaseTag


def rebuild_flops(rows_nnz: float, m_rows: int) -> float:
    """Recurrence-rebuild flops for one lost block: one replay of the
    block's row panel (SpMV) plus the axpy/dot vector updates.  Shared
    with the analytic engine so both price ESR identically."""
    return 2.0 * float(rows_nnz) + 10.0 * m_rows


def retention_bytes(block_rows: int) -> float:
    """Bytes one rank streams per iteration: its p and r blocks."""
    return 2.0 * block_rows * BYTES_PER_ENTRY


class ExactStateReconstruction(RecoveryScheme):
    """ESR: exact rebuild from redundant p/r copies on neighbour ranks."""

    name = "ESR"
    recovers_jointly = True

    def __init__(self) -> None:
        self._replica: CGState | None = None
        self.recoveries = 0

    def setup(self, services: RecoveryServices) -> None:
        self._replica = None
        self.recoveries = 0
        # Per-iteration retention: every rank's stream of its two vector
        # blocks overlaps the iteration; the energy is the per-core
        # active draw for each transfer's duration.
        part = services.partition
        p_core = services.power_compute_w() / services.nranks
        total = 0.0
        for rank in range(services.nranks):
            sl = part.slice_of(rank)
            xfer = services.interconnect_p2p_s(
                retention_bytes(sl.stop - sl.start)
            )
            total += xfer * p_core
        self.overlap_energy_per_iteration_j = total

    def next_hook_iteration(self, iteration: int) -> float:
        # Pure snapshot, like RD: only the copy taken right before a
        # fault is ever read, and faults end spans.
        return float("inf")

    def on_iteration_end(self, services: RecoveryServices, state: CGState) -> None:
        # The neighbour ranks hold this iteration's redundant p/r copies;
        # the full-state copy stands in for what they can reconstruct
        # exactly from them.
        self._replica = state.copy()

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        victims = event.victims
        part = services.partition
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank, n_victims=len(victims),
        ):
            if self._replica is None:
                # Fault before the first completed iteration: nothing has
                # been streamed yet; rebuild from the initial guess.
                r0 = services.b - services.dmat.matvec(services.x0)
                for v in victims:
                    sl = part.slice_of(v)
                    state.x[sl] = services.x0[sl]
                    state.r[sl] = r0[sl]
                    state.p[sl] = r0[sl]
                needs_restart = True
            else:
                for v in victims:
                    sl = part.slice_of(v)
                    state.x[sl] = self._replica.x[sl]
                    state.r[sl] = self._replica.r[sl]
                    state.p[sl] = self._replica.p[sl]
                state.rz = self._replica.rz
                needs_restart = False
            # Per victim: survivors ship the redundant copies back, then
            # the replacement rank replays the recurrence on its rows.
            rebuild_s = 0.0
            for v in victims:
                sl = part.slice_of(v)
                xfer = services.interconnect_p2p_s(
                    retention_bytes(sl.stop - sl.start)
                )
                services.charge_phase(
                    PhaseTag.RESTORE, xfer, services.power_compute_w()
                )
                flops = rebuild_flops(
                    services.dmat.row_block(v).nnz, sl.stop - sl.start
                )
                rebuild_s += services.local_compute_s(flops)
            services.charge_phase(
                PhaseTag.RECONSTRUCT,
                rebuild_s,
                services.power_reconstruct_w(dvfs=False),
            )
        self.recoveries += len(victims)
        return RecoveryOutcome(
            needs_restart=needs_restart,
            construct_time_s=rebuild_s,
            detail={"exact": True, "victims": list(victims)},
        )
