"""Interpolation-based forward recovery: LI and LSI (Sections 3.2 and 4).

LI (Eq. 17/19) reconstructs the lost block from the victim's own rows:

    A_{p_i,p_i} x_i = y,     y = b_{p_i} - sum_{j != i} A_{p_i,p_j} x_j

LSI (Eq. 18/20/21) solves the least-squares problem over the victim's
*column* block; for SPD A the normal equations become local to p_i:

    (A_{p_i,:} A_{p_i,:}^T) x_i = A_{p_i,:} beta,
    beta = b - sum_{j != i} A_{:,p_j} x_j

``method`` selects the construction algorithm:

* ``"lu"`` (LI only) — prior work's exact sequential sparse LU [2];
* ``"qr"`` (LSI only) — prior work's exact parallel least-squares [2];
* ``"cg"`` — the paper's optimization (Section 4.1): a *local* CG run to
  a loose ``construct_tol``.  The exact solution is unnecessary because
  the interpolant itself only approximates the lost data.

``dvfs=True`` (CG method only) enables the Section-4.2 power schedule:
during construction the victim's core stays at f_max while every other
core drops to f_min, cutting node power ~0.75x -> ~0.45x of compute.

Concurrent failures (``event.victims`` with several ranks) are repaired
jointly: victims are grouped into maximal runs of contiguous ranks and
each group's *union* block is reconstructed as one interpolation system
— the union of the lost diagonal blocks for LI, the union of the lost
column blocks for LSI.  A fault that loses every rank leaves no
surviving data to interpolate from, so that degenerate case falls back
to block-by-block reconstruction against the zeroed remainder.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.core.recovery.localsolve import (
    exact_least_squares,
    local_cg,
    lu_solve_with_stats,
)
from repro.faults.events import FaultEvent
from repro.matrices.distributed import BYTES_PER_ENTRY
from repro.power.energy import PhaseTag

#: Local construction CG iteration cap, as a multiple of the block size.
MAX_LOCAL_ITER_FACTOR = 10


def contiguous_groups(victims) -> list[list[int]]:
    """Sorted victims split into maximal runs of consecutive ranks."""
    vs = sorted(victims)
    groups = [[vs[0]]]
    for v in vs[1:]:
        if v == groups[-1][-1] + 1:
            groups[-1].append(v)
        else:
            groups.append([v])
    return groups


class _InterpolationBase(RecoveryScheme):
    """Shared mechanics of LI and LSI."""

    recovers_jointly = True

    def __init__(
        self,
        *,
        method: str,
        construct_tol: float,
        dvfs: bool,
        valid_methods: tuple[str, ...],
    ) -> None:
        if method not in valid_methods:
            raise ValueError(f"method must be one of {valid_methods}, got {method!r}")
        if construct_tol <= 0:
            raise ValueError("construction tolerance must be positive")
        if dvfs and method != "cg":
            raise ValueError(
                "the DVFS schedule applies to the local CG construction only"
            )
        self.method = method
        self.construct_tol = construct_tol
        self.dvfs = dvfs
        self.constructions: list[dict] = []

    def setup(self, services: RecoveryServices) -> None:
        self.constructions = []

    # -- helpers --------------------------------------------------------
    def _charge_rhs_comm(
        self,
        services: RecoveryServices,
        dst: int,
        exclude: "set[int] | frozenset[int]",
        nbytes_in: float,
    ) -> float:
        """``dst`` gathers the remote data its right-hand side needs
        from every surviving rank (those outside ``exclude``)."""
        total = 0.0
        survivors = max(1, services.nranks - len(exclude))
        for src in range(services.nranks):
            if src in exclude:
                continue
            share = nbytes_in / survivors
            total += services.p2p_s(src, dst, share)
        power = services.power_compute_w()
        services.charge_phase(PhaseTag.RECONSTRUCT, total, power)
        return total

    def _charge_construction(
        self,
        services: RecoveryServices,
        group: "list[int]",
        seconds: float,
        *,
        parallel: bool,
    ) -> None:
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=group[0], method=self.method,
        ):
            if parallel:
                power = services.power_compute_w()
            else:
                if self.dvfs:
                    # Bare int for the single-victim degenerate case so
                    # pre-victim-set services/fakes keep working.
                    services.apply_dvfs_reconstruct(
                        group[0] if len(group) == 1 else tuple(group)
                    )
                power = services.power_reconstruct_w(dvfs=self.dvfs)
            services.charge_phase(PhaseTag.RECONSTRUCT, seconds, power)
            if not parallel and self.dvfs:
                services.release_dvfs()

    def _victim_groups(
        self, services: RecoveryServices, event: FaultEvent
    ) -> list[list[int]]:
        """How to partition the event's victim set into repair units."""
        victims = list(event.victims)
        if len(victims) >= services.nranks:
            # Every rank lost: no survivors to interpolate around, so
            # reconstruct block by block against the zeroed remainder
            # (the historical wide-scope behaviour).
            return [[v] for v in victims]
        return contiguous_groups(victims)

    def _union_slice(self, services: RecoveryServices, group: "list[int]"):
        start = services.partition.slice_of(group[0]).start
        stop = services.partition.slice_of(group[-1]).stop
        return slice(start, stop)

    def _finish(
        self, services: RecoveryServices, detail: dict
    ) -> RecoveryOutcome:
        # The post-recovery restart (true-residual recomputation) is
        # charged uniformly by the solver for every needs_restart scheme.
        self.constructions.append(detail)
        return RecoveryOutcome(
            needs_restart=True,
            construct_time_s=detail.get("construct_s", 0.0),
            detail=detail,
        )


class LinearInterpolation(_InterpolationBase):
    """LI: solve the local diagonal block for the lost entries (Eq. 19)."""

    def __init__(
        self,
        *,
        method: str = "cg",
        construct_tol: float = 1e-6,
        dvfs: bool = False,
    ) -> None:
        super().__init__(
            method=method,
            construct_tol=construct_tol,
            dvfs=dvfs,
            valid_methods=("cg", "lu"),
        )
        self.name = "LI-DVFS" if dvfs else "LI"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        groups = self._victim_groups(services, event)
        total_s = 0.0
        group_details = []
        for group in groups:
            construct_s, stats_detail = self._recover_group(
                services, state, group
            )
            total_s += construct_s
            group_details.append(stats_detail)
        detail = {
            "scheme": self.name,
            "method": self.method,
            "construct_s": total_s,
        }
        if len(groups) == 1:
            detail.update(group_details[0])
        else:
            detail["groups"] = [
                {"victims": g, **d} for g, d in zip(groups, group_details)
            ]
        return self._finish(services, detail)

    def _recover_group(
        self, services: RecoveryServices, state: CGState, group: "list[int]"
    ) -> "tuple[float, dict]":
        sl = self._union_slice(services, group)
        if len(group) == 1:
            rows = services.dmat.row_block(group[0])
            diag = services.dmat.diag_block(group[0])
        else:
            rows = sp.vstack(
                [services.dmat.row_block(v) for v in group], format="csr"
            )
            diag = rows[:, sl].tocsr()
        n_loc = sl.stop - sl.start

        # Zero the damaged entries so the off-diagonal product excludes
        # the group's own (lost) contribution: y = b_U - sum_{j not in U} A_Uj x_j.
        state.x[sl] = 0.0
        y = services.b[sl] - rows @ state.x

        # The group pulls the halo x entries the product above consumed;
        # halo traffic between group members is lost data, not a transfer.
        group_set = set(group)
        nbytes_in = 0.0
        for v in group:
            halo = services.dmat.blocks(v).halo_recv_counts
            nbytes_in += sum(
                cnt for src, cnt in halo.items() if src not in group_set
            ) * BYTES_PER_ENTRY
        self._charge_rhs_comm(services, group[0], group_set, nbytes_in)

        if self.method == "lu":
            x_i, lu = lu_solve_with_stats(diag, y)
            construct_s = services.local_compute_s(
                lu.factor_flops, kind="factor"
            ) + services.local_compute_s(lu.solve_flops)
            stats_detail = {"factor_nnz": lu.factor_nnz}
        else:
            # Jacobi preconditioning: the diagonal block inherits the
            # matrix's heterogeneous row scales, which would otherwise
            # dominate the local iteration count.
            diag_of_block = np.maximum(diag.diagonal(), 1e-300)
            x_i, stats = local_cg(
                lambda v: diag @ v,
                y,
                tol=self.construct_tol,
                max_iters=MAX_LOCAL_ITER_FACTOR * max(n_loc, 1),
                flops_per_apply=2.0 * diag.nnz,
                jacobi_diag=diag_of_block,
            )
            construct_s = services.local_compute_s(stats.flops)
            stats_detail = {
                "local_iters": stats.iterations,
                "construct_relres": stats.relative_residual,
            }

        self._charge_construction(services, group, construct_s, parallel=False)
        state.x[sl] = x_i
        return construct_s, stats_detail


class LeastSquaresInterpolation(_InterpolationBase):
    """LSI: least-squares interpolation over the victim's columns."""

    def __init__(
        self,
        *,
        method: str = "cg",
        construct_tol: float = 1e-6,
        dvfs: bool = False,
    ) -> None:
        super().__init__(
            method=method,
            construct_tol=construct_tol,
            dvfs=dvfs,
            valid_methods=("cg", "qr"),
        )
        self.name = "LSI-DVFS" if dvfs else "LSI"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        groups = self._victim_groups(services, event)
        total_s = 0.0
        group_details = []
        for group in groups:
            construct_s, stats_detail = self._recover_group(
                services, state, group
            )
            total_s += construct_s
            group_details.append(stats_detail)
        detail = {
            "scheme": self.name,
            "method": self.method,
            "construct_s": total_s,
        }
        if len(groups) == 1:
            detail.update(group_details[0])
        else:
            detail["groups"] = [
                {"victims": g, **d} for g, d in zip(groups, group_details)
            ]
        return self._finish(services, detail)

    def _recover_group(
        self, services: RecoveryServices, state: CGState, group: "list[int]"
    ) -> "tuple[float, dict]":
        sl = self._union_slice(services, group)
        if len(group) == 1:
            rows = services.dmat.row_block(group[0])
        else:
            rows = sp.vstack(
                [services.dmat.row_block(v) for v in group], format="csr"
            )
        n = services.dmat.n
        n_loc = sl.stop - sl.start

        # beta = b - sum_{j not in U} A_{:,p_j} x_j: every rank computes
        # its block of A x with the group's entries zeroed.
        state.x[sl] = 0.0
        beta = services.b - services.dmat.matvec(state.x)

        # One distributed SpMV to form beta, then gather it to the group.
        services.charge_phase(
            PhaseTag.RECONSTRUCT,
            services.restart_cost_s(),
            services.power_compute_w(),
        )
        group_set = set(group)
        self._charge_rhs_comm(
            services, group[0], group_set, n * BYTES_PER_ENTRY
        )

        if self.method == "qr":
            # Exact parallel least squares (prior work's QR [2]): all
            # ranks participate; each LSQR round is two distributed
            # matvecs plus reductions.
            if len(group) == 1:
                col = services.dmat.col_block(group[0])
            else:
                col = sp.hstack(
                    [services.dmat.col_block(v) for v in group], format="csr"
                )
            x_i, stats = exact_least_squares(col, beta)
            per_round_flops = 4.0 * col.nnz / services.nranks
            per_round_s = services.local_compute_s(per_round_flops) + (
                2.0 * services.collective_allreduce_s(n_loc * BYTES_PER_ENTRY)
            )
            construct_s = stats.iterations * per_round_s
            self._charge_construction(services, group, construct_s, parallel=True)
            detail = {"lsqr_iters": stats.iterations}
        else:
            # Local normal equations (Eq. 21): operator v -> A_U (A_U^T v)
            # built solely from the group's own (recovered static) rows.
            rows_t = rows.T.tocsr()
            rhs = rows @ beta
            # Jacobi diagonal of A_U A_U^T = squared row norms: tames the
            # squared, badly-scaled conditioning of the normal equations.
            row_norms_sq = np.asarray(rows.multiply(rows).sum(axis=1)).ravel()
            row_norms_sq = np.maximum(row_norms_sq, 1e-300)
            x_i, stats = local_cg(
                lambda v: rows @ (rows_t @ v),
                rhs,
                tol=self.construct_tol,
                max_iters=MAX_LOCAL_ITER_FACTOR * max(n_loc, 1),
                flops_per_apply=4.0 * rows.nnz,
                jacobi_diag=row_norms_sq,
            )
            construct_s = services.local_compute_s(stats.flops)
            self._charge_construction(services, group, construct_s, parallel=False)
            detail = {
                "local_iters": stats.iterations,
                "construct_relres": stats.relative_residual,
            }

        state.x[sl] = x_i
        return construct_s, detail
