"""Interpolation-based forward recovery: LI and LSI (Sections 3.2 and 4).

LI (Eq. 17/19) reconstructs the lost block from the victim's own rows:

    A_{p_i,p_i} x_i = y,     y = b_{p_i} - sum_{j != i} A_{p_i,p_j} x_j

LSI (Eq. 18/20/21) solves the least-squares problem over the victim's
*column* block; for SPD A the normal equations become local to p_i:

    (A_{p_i,:} A_{p_i,:}^T) x_i = A_{p_i,:} beta,
    beta = b - sum_{j != i} A_{:,p_j} x_j

``method`` selects the construction algorithm:

* ``"lu"`` (LI only) — prior work's exact sequential sparse LU [2];
* ``"qr"`` (LSI only) — prior work's exact parallel least-squares [2];
* ``"cg"`` — the paper's optimization (Section 4.1): a *local* CG run to
  a loose ``construct_tol``.  The exact solution is unnecessary because
  the interpolant itself only approximates the lost data.

``dvfs=True`` (CG method only) enables the Section-4.2 power schedule:
during construction the victim's core stays at f_max while every other
core drops to f_min, cutting node power ~0.75x -> ~0.45x of compute.
"""

from __future__ import annotations

import numpy as np

from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.core.recovery.localsolve import (
    exact_least_squares,
    local_cg,
    lu_solve_with_stats,
)
from repro.faults.events import FaultEvent
from repro.matrices.distributed import BYTES_PER_ENTRY
from repro.power.energy import PhaseTag

#: Local construction CG iteration cap, as a multiple of the block size.
MAX_LOCAL_ITER_FACTOR = 10


class _InterpolationBase(RecoveryScheme):
    """Shared mechanics of LI and LSI."""

    def __init__(
        self,
        *,
        method: str,
        construct_tol: float,
        dvfs: bool,
        valid_methods: tuple[str, ...],
    ) -> None:
        if method not in valid_methods:
            raise ValueError(f"method must be one of {valid_methods}, got {method!r}")
        if construct_tol <= 0:
            raise ValueError("construction tolerance must be positive")
        if dvfs and method != "cg":
            raise ValueError(
                "the DVFS schedule applies to the local CG construction only"
            )
        self.method = method
        self.construct_tol = construct_tol
        self.dvfs = dvfs
        self.constructions: list[dict] = []

    def setup(self, services: RecoveryServices) -> None:
        self.constructions = []

    # -- helpers --------------------------------------------------------
    def _charge_rhs_comm(
        self, services: RecoveryServices, event: FaultEvent, nbytes_in: float
    ) -> float:
        """Victim gathers the remote data its right-hand side needs."""
        total = 0.0
        for src in range(services.nranks):
            if src == event.victim_rank:
                continue
            share = nbytes_in / max(1, services.nranks - 1)
            total += services.p2p_s(src, event.victim_rank, share)
        power = services.power_compute_w()
        services.charge_phase(PhaseTag.RECONSTRUCT, total, power)
        return total

    def _charge_construction(
        self,
        services: RecoveryServices,
        event: FaultEvent,
        seconds: float,
        *,
        parallel: bool,
    ) -> None:
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank, method=self.method,
        ):
            if parallel:
                power = services.power_compute_w()
            else:
                if self.dvfs:
                    services.apply_dvfs_reconstruct(event.victim_rank)
                power = services.power_reconstruct_w(dvfs=self.dvfs)
            services.charge_phase(PhaseTag.RECONSTRUCT, seconds, power)
            if not parallel and self.dvfs:
                services.release_dvfs()

    def _finish(
        self, services: RecoveryServices, detail: dict
    ) -> RecoveryOutcome:
        # The post-recovery restart (true-residual recomputation) is
        # charged uniformly by the solver for every needs_restart scheme.
        self.constructions.append(detail)
        return RecoveryOutcome(
            needs_restart=True,
            construct_time_s=detail.get("construct_s", 0.0),
            detail=detail,
        )


class LinearInterpolation(_InterpolationBase):
    """LI: solve the local diagonal block for the lost entries (Eq. 19)."""

    def __init__(
        self,
        *,
        method: str = "cg",
        construct_tol: float = 1e-6,
        dvfs: bool = False,
    ) -> None:
        super().__init__(
            method=method,
            construct_tol=construct_tol,
            dvfs=dvfs,
            valid_methods=("cg", "lu"),
        )
        self.name = "LI-DVFS" if dvfs else "LI"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        sl = services.partition.slice_of(event.victim_rank)
        rows = services.dmat.row_block(event.victim_rank)
        diag = services.dmat.diag_block(event.victim_rank)
        n_loc = sl.stop - sl.start

        # Zero the damaged entries so the off-diagonal product excludes
        # the victim's own (lost) contribution: y = b_i - sum_{j!=i} A_ij x_j.
        state.x[sl] = 0.0
        y = services.b[sl] - rows @ state.x

        # The victim pulls the halo x entries the product above consumed.
        halo = services.dmat.blocks(event.victim_rank).halo_recv_counts
        nbytes_in = sum(halo.values()) * BYTES_PER_ENTRY
        self._charge_rhs_comm(services, event, nbytes_in)

        if self.method == "lu":
            x_i, lu = lu_solve_with_stats(diag, y)
            construct_s = services.local_compute_s(
                lu.factor_flops, kind="factor"
            ) + services.local_compute_s(lu.solve_flops)
            stats_detail = {"factor_nnz": lu.factor_nnz}
        else:
            # Jacobi preconditioning: the diagonal block inherits the
            # matrix's heterogeneous row scales, which would otherwise
            # dominate the local iteration count.
            diag_of_block = np.maximum(diag.diagonal(), 1e-300)
            x_i, stats = local_cg(
                lambda v: diag @ v,
                y,
                tol=self.construct_tol,
                max_iters=MAX_LOCAL_ITER_FACTOR * max(n_loc, 1),
                flops_per_apply=2.0 * diag.nnz,
                jacobi_diag=diag_of_block,
            )
            construct_s = services.local_compute_s(stats.flops)
            stats_detail = {
                "local_iters": stats.iterations,
                "construct_relres": stats.relative_residual,
            }

        self._charge_construction(services, event, construct_s, parallel=False)
        state.x[sl] = x_i
        return self._finish(
            services,
            {
                "scheme": self.name,
                "method": self.method,
                "construct_s": construct_s,
                **stats_detail,
            },
        )


class LeastSquaresInterpolation(_InterpolationBase):
    """LSI: least-squares interpolation over the victim's columns."""

    def __init__(
        self,
        *,
        method: str = "cg",
        construct_tol: float = 1e-6,
        dvfs: bool = False,
    ) -> None:
        super().__init__(
            method=method,
            construct_tol=construct_tol,
            dvfs=dvfs,
            valid_methods=("cg", "qr"),
        )
        self.name = "LSI-DVFS" if dvfs else "LSI"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        sl = services.partition.slice_of(event.victim_rank)
        rows = services.dmat.row_block(event.victim_rank)
        n = services.dmat.n
        n_loc = sl.stop - sl.start

        # beta = b - sum_{j != i} A_{:,p_j} x_j: every rank computes its
        # block of A x with the victim's entries zeroed.
        state.x[sl] = 0.0
        beta = services.b - services.dmat.matvec(state.x)

        # One distributed SpMV to form beta, then gather it to the victim.
        services.charge_phase(
            PhaseTag.RECONSTRUCT,
            services.restart_cost_s(),
            services.power_compute_w(),
        )
        self._charge_rhs_comm(services, event, n * BYTES_PER_ENTRY)

        if self.method == "qr":
            # Exact parallel least squares (prior work's QR [2]): all
            # ranks participate; each LSQR round is two distributed
            # matvecs plus reductions.
            col = services.dmat.col_block(event.victim_rank)
            x_i, stats = exact_least_squares(col, beta)
            per_round_flops = 4.0 * col.nnz / services.nranks
            per_round_s = services.local_compute_s(per_round_flops) + (
                2.0 * services.collective_allreduce_s(n_loc * BYTES_PER_ENTRY)
            )
            construct_s = stats.iterations * per_round_s
            self._charge_construction(services, event, construct_s, parallel=True)
            detail = {"lsqr_iters": stats.iterations}
        else:
            # Local normal equations (Eq. 21): operator v -> A_i (A_i^T v)
            # built solely from the victim's own (recovered static) rows.
            rows_t = rows.T.tocsr()
            rhs = rows @ beta
            # Jacobi diagonal of A_i A_i^T = squared row norms: tames the
            # squared, badly-scaled conditioning of the normal equations.
            row_norms_sq = np.asarray(rows.multiply(rows).sum(axis=1)).ravel()
            row_norms_sq = np.maximum(row_norms_sq, 1e-300)
            x_i, stats = local_cg(
                lambda v: rows @ (rows_t @ v),
                rhs,
                tol=self.construct_tol,
                max_iters=MAX_LOCAL_ITER_FACTOR * max(n_loc, 1),
                flops_per_apply=4.0 * rows.nnz,
                jacobi_diag=row_norms_sq,
            )
            construct_s = services.local_compute_s(stats.flops)
            self._charge_construction(services, event, construct_s, parallel=False)
            detail = {
                "local_iters": stats.iterations,
                "construct_relres": stats.relative_residual,
            }

        state.x[sl] = x_i
        return self._finish(
            services,
            {
                "scheme": self.name,
                "method": self.method,
                "construct_s": construct_s,
                **detail,
            },
        )
