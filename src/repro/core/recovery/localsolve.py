"""Local solvers used by interpolation-based recovery (Section 4.1).

The optimized LI/LSI schemes solve their construction systems *locally*
on the failed process with CG, instead of the exact sequential LU (LI) or
parallel QR (LSI) of prior work [2].  This module hosts:

* :func:`local_cg` — a matvec-driven CG with iteration counting, used for
  both Eq. 19 (LI: ``A_{p_i,p_i} x = y``) and Eq. 21 (LSI: the normal
  equations operator ``A_{p_i,:} A_{p_i,:}^T``);
* :func:`lu_solve_with_stats` — the exact sparse-LU baseline with its
  fill statistics, from which the factorization cost is estimated;
* :func:`exact_least_squares` — the exact least-squares baseline standing
  in for the parallel sparse QR of [2] (SciPy has no sparse QR; an
  exhaustively converged LSQR produces the same minimiser, and its real
  iteration count drives the parallel cost model — see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla


@dataclass(frozen=True)
class LocalSolveStats:
    """What a construction solve did, for the cost model."""

    iterations: int
    relative_residual: float
    flops: float


def local_cg(
    matvec: Callable[[np.ndarray], np.ndarray],
    rhs: np.ndarray,
    *,
    tol: float,
    max_iters: int,
    flops_per_apply: float,
    jacobi_diag: np.ndarray | None = None,
    dense_flops_per_row: float = 10.0,
) -> tuple[np.ndarray, LocalSolveStats]:
    """(Preconditioned) CG on an SPD operator given as a matvec callable.

    Stops at relative residual ``tol`` or ``max_iters``.  ``flops`` in the
    returned stats is the cost-model input: iterations times one operator
    application plus the BLAS-1 work.

    ``jacobi_diag``, when given, enables Jacobi preconditioning with that
    operator diagonal — essential for the LSI normal equations, whose
    conditioning is the square of the row block's and whose rows can be
    badly scaled on irregular matrices.
    """
    if tol <= 0:
        raise ValueError("tolerance must be positive")
    if max_iters < 1:
        raise ValueError("max_iters must be positive")
    rhs = np.asarray(rhs, dtype=np.float64)
    n = rhs.size
    rhs_norm = float(np.linalg.norm(rhs))
    if rhs_norm == 0.0:
        return np.zeros(n), LocalSolveStats(0, 0.0, 0.0)
    if jacobi_diag is not None:
        jacobi_diag = np.asarray(jacobi_diag, dtype=np.float64)
        if jacobi_diag.shape != (n,):
            raise ValueError("preconditioner diagonal does not match rhs")
        if np.any(jacobi_diag <= 0):
            raise ValueError("Jacobi diagonal must be positive")
        minv = 1.0 / jacobi_diag
    else:
        minv = None
    x = np.zeros(n)
    r = rhs.copy()
    z = r * minv if minv is not None else r
    p = z.copy()
    rz = float(r @ z)
    rr = float(r @ r)
    it = 0
    while np.sqrt(rr) / rhs_norm > tol and it < max_iters:
        q = matvec(p)
        pq = float(p @ q)
        if pq <= 0 or not np.isfinite(pq):
            break  # operator numerically not SPD; return best effort
        alpha = rz / pq
        x += alpha * p
        r -= alpha * q
        z = r * minv if minv is not None else r
        rz_new = float(r @ z)
        beta = rz_new / rz if rz > 0 else 0.0
        p = z + beta * p
        rz = rz_new
        rr = float(r @ r)
        it += 1
    rel = float(np.sqrt(max(rr, 0.0)) / rhs_norm)
    flops = it * (flops_per_apply + dense_flops_per_row * n)
    return x, LocalSolveStats(it, rel, flops)


@dataclass(frozen=True)
class LuStats:
    """Fill statistics of a sparse LU factorization."""

    n: int
    factor_nnz: int

    @property
    def effective_bandwidth(self) -> float:
        """Semi-bandwidth of a banded matrix with the same fill."""
        return max(1.0, self.factor_nnz / (2.0 * self.n))

    @property
    def factor_flops(self) -> float:
        """Banded-equivalent factorization cost: 2 n w^2 [24]."""
        return 2.0 * self.n * self.effective_bandwidth**2

    @property
    def solve_flops(self) -> float:
        """Two triangular solves over the factors."""
        return 4.0 * self.factor_nnz


def lu_solve_with_stats(a: sp.spmatrix, rhs: np.ndarray) -> tuple[np.ndarray, LuStats]:
    """Exact solve of ``a x = rhs`` via sparse LU, with fill statistics.

    This is the prior-work LI construction [2]: exact, memory-hungry
    (fill), and priced by the banded-equivalent flop count.
    """
    a = sp.csc_matrix(a)
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    lu = spla.splu(a)
    x = lu.solve(np.asarray(rhs, dtype=np.float64))
    stats = LuStats(n=a.shape[0], factor_nnz=int(lu.L.nnz + lu.U.nnz))
    return x, stats


@dataclass(frozen=True)
class LsqrStats:
    """Work performed by the exact least-squares baseline."""

    iterations: int
    residual_norm: float


def exact_least_squares(
    a: sp.spmatrix | spla.LinearOperator, rhs: np.ndarray, *, n_cols: int | None = None
) -> tuple[np.ndarray, LsqrStats]:
    """Exact (machine-precision) least-squares minimiser of ``|a x - rhs|``.

    Stands in for the parallel sparse QR of [2]; LSQR run to machine
    precision converges to the same minimiser, and its iteration count is
    the communication-round count of the parallel baseline.
    """
    result = spla.lsqr(a, np.asarray(rhs, dtype=np.float64), atol=1e-14, btol=1e-14,
                       iter_lim=None)
    x, istop, itn, r1norm = result[0], result[1], result[2], result[3]
    return x, LsqrStats(iterations=int(itn), residual_norm=float(r1norm))
