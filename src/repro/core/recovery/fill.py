"""Assignment-based forward recovery: F0 and FI.

"F0 and FI are assignment based and thus do not incur a construction
cost — i.e., T_const = 0.  However, they incur large T_extra to
converge." (Section 3.2)

Both rewrite only the victim's block of x and restart the CG recurrence;
the entire cost shows up as extra iterations, which the solver measures.
"""

from __future__ import annotations

from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.faults.events import FaultEvent


class ZeroFill(RecoveryScheme):
    """F0: assign 0 to the lost block x_{p_i}."""

    name = "F0"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            sl = services.partition.slice_of(event.victim_rank)
            state.x[sl] = 0.0
        return RecoveryOutcome(needs_restart=True)


class InitialGuessFill(RecoveryScheme):
    """FI: assign the initial guess to the lost block x_{p_i}."""

    name = "FI"

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            sl = services.partition.slice_of(event.victim_rank)
            state.x[sl] = services.x0[sl]
        return RecoveryOutcome(needs_restart=True)
