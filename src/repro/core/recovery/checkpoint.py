"""Checkpoint/restart recovery (CR-M, CR-D).

The iterate x is checkpointed every ``interval_iters`` iterations; on a
fault the solver rolls the *whole* state back to the most recent
checkpoint (classical CR restarts every process, Section 7) and recomputes
the lost iterations.  The interval defaults to Young's optimum computed
from the store's measured per-checkpoint cost and the configured MTBF
(Section 5.3 uses Young's formula [41]); experiments may also pin it,
e.g. the resilience study fixes 100 iterations (Section 5.2).

Checkpoint writes and rollback reads are charged at the checkpoint power
point — "CPUs are not highly utilized during checkpointing and thus
consume less power than in computation phase" (Section 3.2) — which
produces the high/low power plateaus the paper describes.
"""

from __future__ import annotations


from repro.checkpoint.interval import interval_in_iterations, young_interval
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.store import CheckpointStore
from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_metrics,
    obs_span,
)
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


class CheckpointRestart(RecoveryScheme):
    """CR over a pluggable store (memory → CR-M, disk → CR-D)."""

    recovers_globally = True

    def __init__(
        self,
        store: CheckpointStore,
        *,
        interval_iters: int | None = None,
        mtbf_s: float | None = None,
        name: str | None = None,
    ) -> None:
        """Either pin ``interval_iters`` or give ``mtbf_s`` to derive the
        Young-optimal interval at setup time."""
        if interval_iters is None and mtbf_s is None:
            raise ValueError("give interval_iters or mtbf_s")
        if interval_iters is not None and interval_iters < 1:
            raise ValueError("interval must be at least one iteration")
        if mtbf_s is not None and mtbf_s <= 0:
            raise ValueError("MTBF must be positive")
        self.store = store
        self._requested_interval = interval_iters
        self.mtbf_s = mtbf_s
        self.manager: CheckpointManager | None = None
        self.name = name or f"CR-{type(store).__name__[0]}"
        self.rollback_reexecute_iters = 0

    def setup(self, services: RecoveryServices) -> None:
        interval = self._requested_interval
        if interval is None:
            # Young's I_C = sqrt(2 t_C M) from the store's actual cost.
            nbytes = services.b.nbytes
            t_c = self.store.write_time_s(nbytes, services.nranks)
            i_c_s = young_interval(t_c, float(self.mtbf_s))
            interval = interval_in_iterations(i_c_s, services.iteration_wall_s)
        self.manager = CheckpointManager(
            self.store, interval, metrics=obs_metrics(services)
        )
        self.rollback_reexecute_iters = 0

    @property
    def interval_iters(self) -> int:
        if self.manager is None:
            raise RuntimeError("setup() has not run yet")
        return self.manager.interval_iters

    def next_hook_iteration(self, iteration: int) -> float:
        # The hook only acts on interval multiples (``CheckpointManager.due``
        # is a pure modulo test); calls in between are no-ops.
        assert self.manager is not None, "setup() must run first"
        interval = self.manager.interval_iters
        return iteration + (interval - iteration % interval)

    def on_iteration_end(self, services: RecoveryServices, state: CGState) -> None:
        assert self.manager is not None, "setup() must run first"
        result = self.manager.maybe_checkpoint(
            state.iteration, state.x, services.nranks
        )
        if result is not None:
            _, write_s = result
            services.charge_phase(
                PhaseTag.CHECKPOINT, write_s, services.power_checkpoint_w()
            )

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        assert self.manager is not None, "setup() must run first"
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            snap, read_s = self.manager.rollback(
                state.iteration, services.b.nbytes, services.nranks
            )
            if snap is None:
                # No checkpoint yet: restart from the initial guess.
                rollback_x = services.x0
                lost = state.iteration
            else:
                rollback_x = snap.x
                lost = state.iteration - snap.iteration
            state.x[:] = rollback_x
            self.rollback_reexecute_iters += lost
            services.charge_phase(
                PhaseTag.RESTORE, read_s, services.power_checkpoint_w()
            )
        return RecoveryOutcome(
            needs_restart=True, detail={"rolled_back_iters": lost}
        )
