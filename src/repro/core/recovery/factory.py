"""Scheme factory: build any Table-2 scheme from its paper name.

Keeps experiment code declarative: ``make_scheme("LSI-DVFS")`` instead of
re-spelling constructor arguments in every benchmark.
"""

from __future__ import annotations

from typing import Callable

from repro.checkpoint.store import DiskStore, MemoryStore
from repro.core.recovery.abcr import AlgorithmBasedCheckpointRecovery
from repro.core.recovery.base import RecoveryScheme
from repro.core.recovery.checkpoint import CheckpointRestart
from repro.core.recovery.esr import ExactStateReconstruction
from repro.core.recovery.fill import InitialGuessFill, ZeroFill
from repro.core.recovery.multilevel import MultiLevelCheckpointRestart
from repro.core.recovery.interpolation import (
    LeastSquaresInterpolation,
    LinearInterpolation,
)
from repro.core.recovery.redundancy import Redundancy

#: Default CR cadence when no MTBF is supplied: the resilience study's
#: fixed "every 100 iterations" (Section 5.2).
DEFAULT_CR_INTERVAL_ITERS = 100


def _cr(store_cls, name: str):
    def build(*, interval_iters=None, mtbf_s=None, **_):
        if interval_iters is None and mtbf_s is None:
            interval_iters = DEFAULT_CR_INTERVAL_ITERS
        return CheckpointRestart(
            store_cls(), interval_iters=interval_iters, mtbf_s=mtbf_s, name=name
        )

    return build


_BUILDERS: dict[str, Callable[..., RecoveryScheme]] = {
    "RD": lambda **_: Redundancy(),
    "TMR": lambda **_: Redundancy(replicas=3),
    "CR-M": _cr(MemoryStore, "CR-M"),
    "CR-D": _cr(DiskStore, "CR-D"),
    "CR-ML": lambda *, interval_iters=None, **_: MultiLevelCheckpointRestart(
        memory_interval=interval_iters or 25
    ),
    "F0": lambda **_: ZeroFill(),
    "FI": lambda **_: InitialGuessFill(),
    "LI": lambda *, construct_tol=1e-6, **_: LinearInterpolation(
        method="cg", construct_tol=construct_tol
    ),
    "LI-LU": lambda **_: LinearInterpolation(method="lu"),
    "LI-DVFS": lambda *, construct_tol=1e-6, **_: LinearInterpolation(
        method="cg", construct_tol=construct_tol, dvfs=True
    ),
    "LSI": lambda *, construct_tol=1e-6, **_: LeastSquaresInterpolation(
        method="cg", construct_tol=construct_tol
    ),
    "LSI-QR": lambda **_: LeastSquaresInterpolation(method="qr"),
    "LSI-DVFS": lambda *, construct_tol=1e-6, **_: LeastSquaresInterpolation(
        method="cg", construct_tol=construct_tol, dvfs=True
    ),
    "ESR": lambda **_: ExactStateReconstruction(),
    "ABCR": lambda *, interval_iters=None, **_: AlgorithmBasedCheckpointRecovery(
        interval_iters=interval_iters or DEFAULT_CR_INTERVAL_ITERS
    ),
}


def scheme_names() -> list[str]:
    """All scheme names :func:`make_scheme` accepts."""
    return list(_BUILDERS)


def make_scheme(
    name: str,
    *,
    interval_iters: int | None = None,
    mtbf_s: float | None = None,
    construct_tol: float = 1e-6,
) -> RecoveryScheme:
    """Build a recovery scheme by its paper name.

    Parameters
    ----------
    name:
        One of :func:`scheme_names` (e.g. ``"CR-D"``, ``"LI-DVFS"``).
    interval_iters, mtbf_s:
        CR cadence control: a fixed iteration interval, or an MTBF from
        which Young's optimum is derived at setup (Section 5.3).
    construct_tol:
        Local-CG construction tolerance for LI/LSI (Figure 4's x-axis).
    """
    try:
        build = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheme {name!r}; known: {', '.join(_BUILDERS)}"
        ) from None
    return build(
        interval_iters=interval_iters, mtbf_s=mtbf_s, construct_tol=construct_tol
    )
