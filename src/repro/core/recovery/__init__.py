"""Recovery schemes (Table 2).

===========  ======================================================
Scheme       Description
===========  ======================================================
``RD``       Double modular redundancy (:class:`Redundancy`)
``CR-M``     Checkpoint to / rollback from memory
``CR-D``     Checkpoint to / rollback from disk
``F0``       Assign 0 to the lost block (:class:`ZeroFill`)
``FI``       Assign the initial guess (:class:`InitialGuessFill`)
``LI``       Linear interpolation, Eq. 17/19
``LSI``      Least-squares interpolation, Eq. 18/21
===========  ======================================================

LI and LSI take a ``method`` (exact ``"lu"``/``"qr"`` per prior work [2],
or the paper's optimized local ``"cg"``) and a ``dvfs`` flag enabling the
Section-4.2 power schedule.
"""

from repro.core.recovery.base import RecoveryScheme, RecoveryServices
from repro.core.recovery.redundancy import Redundancy
from repro.core.recovery.checkpoint import CheckpointRestart
from repro.core.recovery.multilevel import MultiLevelCheckpointRestart
from repro.core.recovery.fill import InitialGuessFill, ZeroFill
from repro.core.recovery.interpolation import (
    LeastSquaresInterpolation,
    LinearInterpolation,
)
from repro.core.recovery.factory import make_scheme, scheme_names

__all__ = [
    "RecoveryScheme",
    "RecoveryServices",
    "Redundancy",
    "CheckpointRestart",
    "MultiLevelCheckpointRestart",
    "ZeroFill",
    "InitialGuessFill",
    "LinearInterpolation",
    "LeastSquaresInterpolation",
    "make_scheme",
    "scheme_names",
]
