"""Recovery scheme interface.

A scheme plugs into the solver loop through three hooks:

* :meth:`RecoveryScheme.setup` — once, before the first iteration;
* :meth:`RecoveryScheme.on_iteration_end` — after every CG iteration
  (CR uses this to checkpoint; RD to refresh its replica);
* :meth:`RecoveryScheme.recover` — when a fault has damaged the state;
  the scheme rewrites the victim's block of x and reports whether the CG
  recurrence must be restarted from the true residual.

Schemes never touch the solver directly: they see a
:class:`RecoveryServices` facade that exposes the partitioned system and
the charging interface of the simulated cluster (time, power, DVFS).
That keeps every scheme unit-testable against a fake services object.
"""

from __future__ import annotations

import abc
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.cg import CGState
from repro.faults.events import FaultEvent
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.partition import BlockRowPartition
from repro.power.energy import PhaseTag


class RecoveryServices(Protocol):
    """What the solver exposes to recovery schemes."""

    @property
    def dmat(self) -> DistributedMatrix: ...

    @property
    def partition(self) -> BlockRowPartition: ...

    @property
    def b(self) -> np.ndarray: ...

    @property
    def x0(self) -> np.ndarray: ...

    @property
    def nranks(self) -> int: ...

    @property
    def iteration_wall_s(self) -> float:
        """Critical-path seconds of one CG iteration."""
        ...

    def charge_phase(self, tag: PhaseTag, duration_s: float, power_w: float) -> None:
        """Advance simulated wall-clock by ``duration_s`` at machine power
        ``power_w`` and book it under ``tag``."""
        ...

    def charge_overlapped(self, tag: PhaseTag, energy_j: float) -> None:
        """Book energy with no wall-clock advance (concurrent replica)."""
        ...

    # -- machine power operating points --------------------------------
    def power_compute_w(self) -> float: ...

    def power_checkpoint_w(self) -> float: ...

    def power_reconstruct_w(self, *, dvfs: bool) -> float: ...

    def power_idle_w(self) -> float: ...

    # -- cost helpers ---------------------------------------------------
    def local_compute_s(self, flops: float, *, kind: str = "spmv") -> float:
        """Seconds for one core at f_max to execute ``flops`` of ``kind``
        work ("spmv", "dense" or "factor")."""
        ...

    def collective_allreduce_s(self, nbytes: float) -> float: ...

    def p2p_s(self, src: int, dst: int, nbytes: float) -> float: ...

    def interconnect_p2p_s(self, nbytes: float) -> float:
        """One inter-node message of ``nbytes`` (replica transfers)."""
        ...

    def restart_cost_s(self) -> float:
        """Seconds of the post-recovery restart (one true-residual
        recomputation: SpMV + halo + reduction)."""
        ...

    def apply_dvfs_reconstruct(self, victims: "int | Sequence[int]") -> None:
        """Section-4.2 schedule: victim cores at f_max, all others f_min.

        Accepts a single rank or the full victim set of a concurrent
        failure event."""
        ...

    def release_dvfs(self) -> None:
        """Return every core to f_max after reconstruction."""
        ...

    # -- observability (optional; absent on minimal fakes) --------------
    def span(self, name: str, **attrs):
        """Context manager timing ``name`` on the solver's telemetry
        (simulated clock); a no-op context when tracing is off."""
        ...

    @property
    def metrics(self):
        """The solver's :class:`~repro.obs.metrics.MetricsRegistry`, or
        ``None`` when tracing is off."""
        ...


def obs_span(services, name: str, **attrs):
    """``services.span(...)`` if the services object provides one, else a
    null context — schemes stay runnable against minimal fakes."""
    span = getattr(services, "span", None)
    return span(name, **attrs) if span is not None else nullcontext()


def obs_metrics(services):
    """The services' metrics registry, or ``None``."""
    return getattr(services, "metrics", None)


@dataclass
class RecoveryOutcome:
    """What a recovery did, for the solver's bookkeeping."""

    needs_restart: bool
    construct_time_s: float = 0.0
    detail: dict | None = None


class RecoveryScheme(abc.ABC):
    """Base class for Table-2 recovery schemes."""

    #: Short name used in tables/figures ("RD", "CR-M", "LI", ...).
    name: str = "base"
    #: DMR runs a full replica: every phase costs double energy.
    energy_multiplier: float = 1.0
    #: Flat per-iteration overlapped energy (joules) the scheme spends
    #: alongside every CG iteration — e.g. ESR streaming its redundant
    #: p/r copies to neighbour ranks.  Charged as REDUNDANT with zero
    #: wall-clock, span-batched float-faithfully like energy_multiplier.
    overlap_energy_per_iteration_j: float = 0.0
    #: True for schemes whose single recover() repairs the whole state
    #: (checkpoint rollback); False for block-local recoveries, which
    #: the solver invokes once per damaged block on wide-scope faults.
    recovers_globally: bool = False
    #: True for schemes that repair a concurrent failure event in one
    #: recover() call over the full victim set (``event.victims``) —
    #: e.g. interpolation around a contiguous lost-block union, or ESR's
    #: multi-loss reconstruction.  False keeps the per-damaged-block
    #: invocation.  Ignored when recovers_globally is set.
    recovers_jointly: bool = False

    def setup(self, services: RecoveryServices) -> None:
        """Called once before the first iteration."""

    def on_iteration_end(
        self, services: RecoveryServices, state: CGState
    ) -> None:
        """Called after every completed CG iteration."""

    def next_hook_iteration(self, iteration: int) -> float | None:
        """Fast-path cadence contract (DESIGN.md §5e).

        The fast solve path batches fault-free iterations into spans and
        calls :meth:`on_iteration_end` once per span end instead of once
        per iteration.  This method tells it the earliest iteration
        (> ``iteration``) at which the hook has an effect that is *not*
        reproduced by a single span-end call; the span is never run past
        that iteration.  Return ``float("inf")`` when a span-end call
        always suffices (e.g. a pure state snapshot, where only the
        snapshot taken immediately before a fault is ever observable),
        or ``None`` — the conservative default — to demand the legacy
        per-iteration cadence.
        """
        return None

    @abc.abstractmethod
    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        """Repair ``state`` after ``event`` damaged the victim's block.

        Implementations must leave every non-victim row of x untouched
        (checkpoint rollback, which legitimately rewrites all rows, is
        the exception) and must charge their time/energy through
        ``services``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r})"
