"""Modular redundancy (RD / DMR, and the TMR extension).

"A dual-modular redundancy (DMR) resilience scheme requires 2N CPUs to
support redundant computation. [...] the recovery time for x^k from the
redundant replica after a fault is negligible.  Nevertheless, the
resilience phases are always concurrent with the normal program progress
phases.  Resilience causes additional power P_{N,res} for the duration of
the application by requiring double the power." (Section 3.2)

Implementation: the scheme keeps a live replica of the full dynamic state
(x, r, p, rz), refreshed after every iteration; recovery copies the
victim's block back and — because the replica is exact — no restart of
the CG recurrence is needed, so RD's iteration trajectory overlaps the
fault-free one (Figure 6).  The replicas' energy is charged through
``energy_multiplier``: the solver books concurrent duplicates of every
phase's energy without advancing wall-clock time.

``replicas=3`` gives triple modular redundancy (TMR, Section 7's related
work and the paper's future-work direction): 3x power, and enough copies
to out-vote silent corruption rather than merely recover detected loss.
"""

from __future__ import annotations


from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_span,
)
from repro.faults.events import FaultEvent
from repro.matrices.distributed import BYTES_PER_ENTRY
from repro.power.energy import PhaseTag


class Redundancy(RecoveryScheme):
    """RD: exact recovery from concurrently maintained replicas.

    ``replicas`` counts the total modular copies (2 = DMR, 3 = TMR).
    With any number of replicas a *detected* fault recovers exactly; TMR
    additionally masks one silently corrupted copy by majority voting,
    which is why it is the classical answer to SDC.
    """

    def __init__(self, *, replicas: int = 2) -> None:
        if replicas < 2:
            raise ValueError("redundancy needs at least two modular copies")
        self.replicas = replicas
        self.name = "RD" if replicas == 2 else ("TMR" if replicas == 3 else f"{replicas}MR")
        self.energy_multiplier = float(replicas)
        self._replica: CGState | None = None
        self.recoveries = 0

    def setup(self, services: RecoveryServices) -> None:
        self._replica = None
        self.recoveries = 0

    def next_hook_iteration(self, iteration: int) -> float:
        # The hook is a pure snapshot: only the copy taken right before a
        # fault is ever read, so one span-end snapshot reproduces any
        # per-iteration snapshot sequence (faults end spans).
        return float("inf")

    def on_iteration_end(self, services: RecoveryServices, state: CGState) -> None:
        # The replicas execute the same iteration on their own CPU sets;
        # keeping a copy here stands in for their (identical) state.
        self._replica = state.copy()

    @property
    def can_outvote_sdc(self) -> bool:
        """Majority voting masks a single corrupted copy from 3 copies."""
        return self.replicas >= 3

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        sl = services.partition.slice_of(event.victim_rank)
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            if self._replica is None:
                # Fault before the first completed iteration: the replica of
                # the *initial* state is the initial guess itself.
                state.x[sl] = services.x0[sl]
                r0 = services.b - services.dmat.matvec(services.x0)
                state.r[sl] = r0[sl]
                state.p[sl] = r0[sl]
                needs_restart = True
            else:
                state.x[sl] = self._replica.x[sl]
                state.r[sl] = self._replica.r[sl]
                state.p[sl] = self._replica.p[sl]
                state.rz = self._replica.rz
                needs_restart = False
            # Shipping the three vector blocks from the replica's core set:
            # one inter-node message, "negligible" (Section 3.2) but real.
            nbytes = 3 * (sl.stop - sl.start) * BYTES_PER_ENTRY
            xfer = services.interconnect_p2p_s(nbytes)
            services.charge_phase(
                PhaseTag.RESTORE, xfer, services.power_compute_w()
            )
        self.recoveries += 1
        return RecoveryOutcome(needs_restart=needs_restart, detail={"exact": True})
