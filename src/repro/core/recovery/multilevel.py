"""Multi-level checkpoint/restart recovery (CR-ML, SCR-style [33]).

Extension beyond the paper's CR-M / CR-D pair: cheap frequent memory
checkpoints plus occasional disk flushes, restoring from the cheapest
surviving level.  CR-ML addresses CR-M's practical weakness the paper
points out — "while CR-M performs best in the projection, it is not
practical to common fault situations with lost data in memory" — by
keeping a disk-backed safety net underneath the memory level.
"""

from __future__ import annotations

from repro.checkpoint.multilevel import MultiLevelManager
from repro.core.cg import CGState
from repro.core.recovery.base import (
    RecoveryOutcome,
    RecoveryScheme,
    RecoveryServices,
    obs_metrics,
    obs_span,
)
from repro.faults.events import FaultEvent
from repro.power.energy import PhaseTag


class MultiLevelCheckpointRestart(RecoveryScheme):
    """CR-ML: two-level checkpoint/restart."""

    name = "CR-ML"
    recovers_globally = True

    def __init__(
        self,
        *,
        memory_interval: int = 25,
        disk_every: int = 4,
        memory_survival: float = 0.9,
        seed: int = 0,
    ) -> None:
        self._args = dict(
            memory_interval=memory_interval,
            disk_every=disk_every,
            memory_survival=memory_survival,
            seed=seed,
        )
        self.manager: MultiLevelManager | None = None
        self.rollback_reexecute_iters = 0
        self.restore_levels: list[str] = []

    def setup(self, services: RecoveryServices) -> None:
        self.manager = MultiLevelManager(**self._args)
        self.rollback_reexecute_iters = 0
        self.restore_levels = []

    def next_hook_iteration(self, iteration: int) -> float:
        # Checkpoints (memory and the riding disk flush) only happen on
        # memory-interval multiples; in-between calls are no-ops.
        assert self.manager is not None, "setup() must run first"
        interval = self.manager.memory_interval
        return iteration + (interval - iteration % interval)

    def on_iteration_end(self, services: RecoveryServices, state: CGState) -> None:
        assert self.manager is not None, "setup() must run first"
        result = self.manager.maybe_checkpoint(
            state.iteration, state.x, services.nranks
        )
        if result is not None:
            write_s, _ = result
            services.charge_phase(
                PhaseTag.CHECKPOINT, write_s, services.power_checkpoint_w()
            )

    def recover(
        self, services: RecoveryServices, state: CGState, event: FaultEvent
    ) -> RecoveryOutcome:
        assert self.manager is not None, "setup() must run first"
        with obs_span(
            services, "recovery.construct", scheme=self.name,
            rank=event.victim_rank,
        ):
            restore = self.manager.rollback(
                state.iteration, services.b.nbytes, services.nranks
            )
            if restore.snapshot is None:
                rollback_x = services.x0
                lost = state.iteration
            else:
                rollback_x = restore.snapshot.x
                lost = state.iteration - restore.snapshot.iteration
            state.x[:] = rollback_x
            self.rollback_reexecute_iters += lost
            self.restore_levels.append(restore.level)
            services.charge_phase(
                PhaseTag.RESTORE, restore.read_time_s,
                services.power_checkpoint_w(),
            )
        m = obs_metrics(services)
        if m is not None:
            m.counter("checkpoint.restores", level=restore.level).inc()
        return RecoveryOutcome(
            needs_restart=True,
            detail={"rolled_back_iters": lost, "level": restore.level},
        )
