"""Execution backends for the CG kernels (DESIGN.md §5j).

A *backend* decides **how** the numerics of one CG span are executed; it
never changes **what** is computed.  Two backends ship:

``loop``
    The paper-faithful distributed reference: every iteration walks the
    ranks one at a time in pure Python — per-rank halo gather
    (``x[cols]`` over the packed block's needed columns), per-rank local
    SpMV on the column-compressed ``A_{p_i,:}`` block, per-rank slice
    axpys — with only the dot products and residual norms computed
    globally (the allreduced scalar is identical on every rank, so one
    global reduction *is* the distributed reduction).  Wall time scales
    linearly with rank count: ~5·nranks numpy calls per iteration.

``batched``
    The default.  All ranks' partitions are contiguous segments of the
    same global arrays (block-row partitioning stacks them by
    construction), so the whole fleet executes each iteration as one
    vectorized ``csr_matvec`` + axpy sequence — ~8 numpy calls per
    iteration regardless of rank count.

**Why the two are bit-identical** (the differential harness in
``tests/core/test_backend_equivalence.py`` pins this):

* Per-rank SpMV: ``A_{p_i,:}`` keeps each row's nonzeros in the same
  storage order as the global CSR matrix (``sort_indices()`` ran at
  construction, and column packing is order-preserving), so the per-row
  accumulation performs the identical floating-point sum in the
  identical order as the global kernel restricted to those rows.
* Slice axpys: elementwise updates on ``x[sl]`` produce the same bits
  as the global update — element ``i`` never sees element ``j``.
* Reductions: both backends call the same global ``np.dot`` /
  ``np.linalg.norm``.  A rank-partial partial-sum tree would accumulate
  in a different order — that is the one place the documented tolerance
  policy (§5j) would downgrade a field from *bitwise* to *ulp-bounded*.

Backends preserve the ``step_span`` contract exactly — same residual
history, same early exit on convergence, same stop-before-breakdown —
so every :class:`~repro.core.recovery.base.RecoveryScheme`, the fault
injector, telemetry, and the closed-form time/energy replay work
unchanged on either backend.
"""

from __future__ import annotations

import math

import numpy as np

try:  # scipy's raw CSR mat-vec kernel; bypasses the spmatrix dispatch
    from scipy.sparse import _sparsetools as _spt

    _csr_matvec = _spt.csr_matvec
except (ImportError, AttributeError):  # pragma: no cover - older scipy
    _csr_matvec = None

#: The backend used when none is configured.
DEFAULT_BACKEND = "batched"

_REGISTRY: dict[str, type["SolverBackend"]] = {}


def register_backend(cls: type["SolverBackend"]) -> type["SolverBackend"]:
    """Class decorator: add a backend to the registry under ``cls.name``."""
    if not cls.name:
        raise ValueError("backend class needs a non-empty name")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def make_backend(name: str, cg) -> "SolverBackend":
    """Instantiate the named backend bound to a ``DistributedCG``."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown backend {name!r}; known: {known}") from None
    return cls(cg)


class SolverBackend:
    """One execution strategy for the CG kernels, bound to a stepper.

    Subclasses implement :meth:`matvec` (the distributed SpMV, used by
    the single-step path and residual re-anchoring on restart) and
    :meth:`step_span` (the fused multi-iteration kernel).  Both must be
    bit-identical to the reference semantics documented on
    :meth:`repro.core.cg.DistributedCG.step_span`.
    """

    name: str = ""

    def __init__(self, cg) -> None:
        self.cg = cg

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """The distributed SpMV ``A @ x`` under this backend."""
        raise NotImplementedError

    def step_span(self, max_steps: int) -> tuple[int, bool]:
        """Run up to ``max_steps`` iterations; ``(taken, breakdown)``."""
        raise NotImplementedError


@register_backend
class BatchedBackend(SolverBackend):
    """All ranks at once: one vectorized kernel sequence per iteration."""

    name = "batched"

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.cg.dmat.matvec(x)

    def step_span(self, max_steps: int) -> tuple[int, bool]:
        cg = self.cg
        if max_steps <= 0:
            return 0, False
        st = cg.state
        minv = cg._minv
        bnorm = cg._bnorm
        tol = cg.tol
        a = cg.dmat.a
        x, r, p, rz = st.x, st.r, st.p, st.rz
        n = a.shape[0]
        # Bypass the spmatrix dispatch: a @ p on a float64 CSR matrix is
        # exactly zeros(n) + csr_matvec (see scipy's _matmul_vector), so
        # calling the kernel directly is bit-identical and much cheaper.
        use_kernel = (
            _csr_matvec is not None
            and getattr(a, "format", None) == "csr"
            and a.dtype == np.float64
        )
        if use_kernel:
            indptr, indices, data = a.indptr, a.indices, a.data
        matvec = cg.dmat.matvec
        hist = np.empty(max_steps, dtype=np.float64)
        isfinite = math.isfinite
        sqrt = math.sqrt
        norm = np.linalg.norm
        dot = np.dot
        multiply = np.multiply
        add = np.add
        subtract = np.subtract
        # Scratch buffers reused across iterations.  Every elementwise
        # update below matches the out-of-place expression in
        # :meth:`DistributedCG.step` value for value:
        # ``multiply(p, alpha, out=tmp)`` computes exactly ``alpha * p``,
        # and the subsequent in-place add/subtract applies it in the same
        # order, so no bits change — only the per-iteration allocations
        # disappear.  ``p`` is (re)assigned to a fresh array on entry so
        # the in-place update never mutates a caller-visible vector
        # mid-span.
        q = np.empty(n)
        tmp = np.empty(n)
        p = p.copy()
        taken = 0
        breakdown = False
        for _ in range(max_steps):
            if use_kernel:
                q.fill(0.0)
                _csr_matvec(n, n, indptr, indices, data, p, q)
            else:
                q = matvec(p)
            pq = float(dot(p, q))
            if pq <= 0 or not isfinite(pq):
                breakdown = True
                break
            alpha = rz / pq
            multiply(p, alpha, out=tmp)
            add(x, tmp, out=x)
            multiply(q, alpha, out=tmp)
            subtract(r, tmp, out=r)
            z = r * minv if minv is not None else r
            rz_new = float(dot(r, z))
            beta = rz_new / rz if rz > 0 else 0.0
            multiply(p, beta, out=tmp)
            add(z, tmp, out=p)
            rz = rz_new
            if minv is None:
                rel = sqrt(max(rz, 0.0)) / bnorm
            else:
                rel = float(norm(r)) / bnorm
            hist[taken] = rel
            taken += 1
            if rel <= tol:
                break
        st.p = p
        st.rz = rz
        st.iteration += taken
        cg.residual_history.extend(hist[:taken].tolist())
        return taken, breakdown


@register_backend
class LoopBackend(SolverBackend):
    """Rank-by-rank reference execution over halo-packed blocks."""

    name = "loop"

    def _rank_pieces(self):
        """``(slice, packed_block)`` per rank, cached on the matrix."""
        dmat = self.cg.dmat
        part = dmat.partition
        return [
            (part.slice_of(rank), dmat.packed_block(rank))
            for rank in range(dmat.nranks)
        ]

    def matvec(self, x: np.ndarray) -> np.ndarray:
        q = np.zeros(self.cg.dmat.n)
        for sl, pb in self._rank_pieces():
            _rank_spmv(pb, x, q[sl])
        return q

    def step_span(self, max_steps: int) -> tuple[int, bool]:
        cg = self.cg
        if max_steps <= 0:
            return 0, False
        st = cg.state
        minv = cg._minv
        bnorm = cg._bnorm
        tol = cg.tol
        n = cg.dmat.n
        pieces = self._rank_pieces()
        x, r, p, rz = st.x, st.r, st.p, st.rz
        hist = np.empty(max_steps, dtype=np.float64)
        isfinite = math.isfinite
        sqrt = math.sqrt
        norm = np.linalg.norm
        dot = np.dot
        multiply = np.multiply
        add = np.add
        subtract = np.subtract
        q = np.empty(n)
        tmp = np.empty(n)
        z = r if minv is None else np.empty(n)
        p = p.copy()
        taken = 0
        breakdown = False
        for _ in range(max_steps):
            # Halo exchange + local SpMV, one rank at a time: each rank
            # gathers the x entries its off-diagonal columns need and
            # multiplies its packed block into its own rows of q.
            for sl, pb in pieces:
                _rank_spmv(pb, p, q[sl])
            # p·q allreduce: the reduced scalar is identical on every
            # rank, so the global dot is the distributed reduction.
            pq = float(dot(p, q))
            if pq <= 0 or not isfinite(pq):
                breakdown = True
                break
            alpha = rz / pq
            for sl, _ in pieces:
                ts = tmp[sl]
                multiply(p[sl], alpha, out=ts)
                add(x[sl], ts, out=x[sl])
                multiply(q[sl], alpha, out=ts)
                subtract(r[sl], ts, out=r[sl])
                if minv is not None:
                    multiply(r[sl], minv[sl], out=z[sl])
            rz_new = float(dot(r, z))
            beta = rz_new / rz if rz > 0 else 0.0
            for sl, _ in pieces:
                ts = tmp[sl]
                multiply(p[sl], beta, out=ts)
                add(z[sl], ts, out=p[sl])
            rz = rz_new
            if minv is None:
                rel = sqrt(max(rz, 0.0)) / bnorm
            else:
                rel = float(norm(r)) / bnorm
            hist[taken] = rel
            taken += 1
            if rel <= tol:
                break
        st.p = p
        st.rz = rz
        st.iteration += taken
        cg.residual_history.extend(hist[:taken].tolist())
        return taken, breakdown


def _rank_spmv(pb, x: np.ndarray, out: np.ndarray) -> None:
    """One rank's local SpMV: halo-gather then packed-CSR multiply.

    ``out`` is the rank's contiguous rows of the global product vector.
    Bit-identical to the global kernel restricted to those rows: the
    packed block preserves each row's nonzero storage order, so the
    per-row sums accumulate the same values in the same order.
    """
    gathered = x[pb.cols]
    mat = pb.mat
    if _csr_matvec is not None and mat.dtype == np.float64:
        out.fill(0.0)
        _csr_matvec(
            mat.shape[0], mat.shape[1],
            mat.indptr, mat.indices, mat.data,
            gathered, out,
        )
    else:  # pragma: no cover - older scipy
        out[:] = mat @ gathered
