"""Adaptive scheme selection (the paper's closing recommendation).

"This work suggests that resilience techniques should be adaptively
adjusted to a given fault rate, system size, and power budget."
(Abstract)  :class:`SchemeAdvisor` does exactly that: given a workload
profile, a failure rate, a system size and (optionally) a power budget,
it evaluates the Section-3 analytical models for every candidate scheme
and ranks the feasible ones by the chosen objective.

The advisor is model-driven — it costs microseconds, not solver runs —
so it can sit in a job scheduler or runtime and re-decide per
allocation, which is the deployment the paper argues for.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import (
    CheckpointModel,
    ForwardRecoveryModel,
    ProgressHaltError,
    RedundancyModel,
)


class Objective(enum.Enum):
    """What to minimise."""

    TIME = "time"
    ENERGY = "energy"
    POWER = "power"


@dataclass(frozen=True)
class Situation:
    """The operating point a scheme must be chosen for."""

    #: Fault-free compute time of the (weak-scaled) workload, seconds.
    t_solve_s: float
    #: Single-core execution power, watts.
    p1_w: float
    #: System size in cores/ranks.
    n_cores: int
    #: Failure rate, faults per second of execution.
    rate_per_s: float
    #: Parallel overhead T_O(N), seconds.
    t_overhead_s: float = 0.0
    #: Machine power budget in watts; None = unconstrained.
    power_budget_w: float | None = None
    # -- per-scheme parameters (measured or modelled) -------------------
    t_c_disk_s: float = 0.05
    t_c_mem_s: float = 0.005
    #: FW per-fault construction time.
    t_const_s: float = 0.02
    #: FW per-fault convergence delay as a fraction of T_solve.
    extra_fraction: float = 0.05
    fw_idle_fraction: float = 0.45

    def __post_init__(self) -> None:
        if min(self.t_solve_s, self.p1_w) <= 0:
            raise ValueError("workload profile must be positive")
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.rate_per_s < 0:
            raise ValueError("failure rate must be non-negative")
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ValueError("power budget must be positive")

    def general_model(self) -> GeneralModel:
        return GeneralModel(
            WorkloadParams(self.t_solve_s, self.p1_w),
            n_cores=self.n_cores,
            parallel_overhead_s=self.t_overhead_s,
        )


@dataclass(frozen=True)
class SchemeEstimate:
    """Model-predicted cost of one scheme in one situation."""

    scheme: str
    total_time_s: float
    total_energy_j: float
    peak_power_w: float
    avg_power_w: float
    feasible: bool
    halted: bool = False
    note: str = ""

    def metric(self, objective: Objective) -> float:
        return {
            Objective.TIME: self.total_time_s,
            Objective.ENERGY: self.total_energy_j,
            Objective.POWER: self.avg_power_w,
        }[objective]


#: The schemes the advisor knows how to model.
ADVISOR_SCHEMES = ("RD", "TMR", "CR-M", "CR-D", "FW", "FW-DVFS")


class SchemeAdvisor:
    """Ranks recovery schemes for a :class:`Situation`."""

    def __init__(self, situation: Situation) -> None:
        self.situation = situation

    # ------------------------------------------------------------------
    def estimate(self, scheme: str) -> SchemeEstimate:
        """Model one scheme; infeasible/halting schemes are flagged, not
        raised."""
        s = self.situation
        gm = s.general_model()
        t_ff = gm.time_fault_free_s()
        e_ff = gm.energy_fault_free_j()
        p_exec = gm.power_execution_w()
        try:
            if scheme in ("RD", "TMR"):
                replicas = 2 if scheme == "RD" else 3
                m = RedundancyModel(gm, replicas=replicas)
                time = t_ff
                energy = e_ff + m.e_res_j()
                peak = avg = m.average_power_w()
            elif scheme in ("CR-M", "CR-D"):
                t_c = s.t_c_mem_s if scheme == "CR-M" else s.t_c_disk_s
                frac = 0.98 if scheme == "CR-M" else 0.74
                m = CheckpointModel(
                    gm,
                    t_c_s=t_c,
                    rate_per_s=s.rate_per_s,
                    checkpoint_power_fraction=frac,
                )
                time = t_ff + m.t_res_s()
                energy = e_ff + m.e_res_j()
                peak = p_exec
                avg = m.average_power_w()
            elif scheme in ("FW", "FW-DVFS"):
                idle = s.fw_idle_fraction if scheme == "FW-DVFS" else 0.74
                m = ForwardRecoveryModel(
                    gm,
                    rate_per_s=s.rate_per_s,
                    t_const_s=s.t_const_s,
                    t_extra_s=s.extra_fraction * s.t_solve_s,
                    n_active=1,
                    idle_power_fraction=idle,
                )
                time = t_ff + m.t_res_s()
                energy = e_ff + m.e_res_j()
                peak = p_exec
                avg = m.average_power_w()
            else:
                raise ValueError(
                    f"unknown scheme {scheme!r}; advisor knows {ADVISOR_SCHEMES}"
                )
        except ProgressHaltError:
            return SchemeEstimate(
                scheme=scheme,
                total_time_s=math.inf,
                total_energy_j=math.inf,
                peak_power_w=math.inf,
                avg_power_w=math.inf,
                feasible=False,
                halted=True,
                note="progress halts at this fault rate",
            )
        feasible = True
        note = ""
        if s.power_budget_w is not None and peak > s.power_budget_w:
            feasible = False
            note = (
                f"peak {peak:.0f} W exceeds budget {s.power_budget_w:.0f} W"
            )
        return SchemeEstimate(
            scheme=scheme,
            total_time_s=time,
            total_energy_j=energy,
            peak_power_w=peak,
            avg_power_w=avg,
            feasible=feasible,
            note=note,
        )

    def rank(self, objective: Objective = Objective.ENERGY) -> list[SchemeEstimate]:
        """All schemes, feasible first, each group by the objective."""
        estimates = [self.estimate(s) for s in ADVISOR_SCHEMES]
        return sorted(
            estimates, key=lambda e: (not e.feasible, e.metric(objective))
        )

    def recommend(
        self, objective: Objective = Objective.ENERGY
    ) -> SchemeEstimate:
        """The best feasible scheme; raises if none is."""
        ranked = self.rank(objective)
        best = ranked[0]
        if not best.feasible:
            raise RuntimeError(
                "no feasible scheme for this situation: "
                + "; ".join(f"{e.scheme}: {e.note or 'halted'}" for e in ranked)
            )
        return best
