"""Distributed Conjugate Gradient stepper.

The numerics are the textbook CG recurrence on the *global* vectors —
mathematically identical to the rank-distributed execution, since
block-row SpMV plus halo exchange reproduces the global SpMV exactly and
the dot products are global allreduces.  The distribution affects (a)
which rows a fault destroys and (b) the cost model; both are handled
explicitly (:class:`IterationCosts` prices one iteration on the simulated
cluster).

The stepper is restartable: after a recovery scheme rewrites part of x,
:meth:`DistributedCG.restart` recomputes the true residual and resets the
search direction, which is the standard way iterative solvers resume
after forward recovery or rollback ("reconstructing x forces
reconstruction of other variables", Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cluster.comm import SimComm
from repro.core.backends import DEFAULT_BACKEND, make_backend
from repro.matrices.distributed import BYTES_PER_ENTRY, DistributedMatrix

#: CG performs two global reductions per iteration (p.q and r.r).
ALLREDUCES_PER_ITER = 2
#: axpy/dot flops per local row per iteration: x,r,p updates (3 axpys =
#: 6 flops) plus two dots (4 flops).
DENSE_FLOPS_PER_ROW = 10
#: Jacobi PCG adds the z = M^-1 r scaling, the r.z dot and the explicit
#: residual norm: 5 more flops per local row.
PCG_EXTRA_FLOPS_PER_ROW = 5


@dataclass
class CGState:
    """The dynamic data of CG: everything a fault can destroy."""

    x: np.ndarray
    r: np.ndarray
    p: np.ndarray
    rz: float
    iteration: int = 0

    def copy(self) -> "CGState":
        return CGState(self.x.copy(), self.r.copy(), self.p.copy(), self.rz, self.iteration)


@dataclass(frozen=True)
class IterationCosts:
    """Pre-computed per-iteration costs on the simulated cluster.

    All quantities are constant across iterations because CG's work per
    iteration is constant, so they are computed once at setup.
    """

    #: Per-rank local compute seconds (SpMV + BLAS-1) at f_max.
    compute_s: np.ndarray
    #: Seconds of halo exchange (per-rank max folded in).
    halo_s: float
    #: Seconds of the two dot-product allreduces.
    allreduce_s: float
    #: Bytes moved per iteration (halo + collective contributions).
    bytes_per_iter: float

    # The three derived scalars are hot — the solver reads them on every
    # charge — so they are cached per instance.  ``cached_property``
    # stores into the instance ``__dict__`` directly, which a frozen
    # dataclass permits (only ``__setattr__`` is blocked), and the cache
    # never goes stale because every field is immutable by contract.
    @cached_property
    def compute_max_s(self) -> float:
        return float(self.compute_s.max())

    @cached_property
    def comm_s(self) -> float:
        return self.halo_s + self.allreduce_s

    @cached_property
    def wall_s(self) -> float:
        """Critical-path seconds of one iteration."""
        return self.compute_max_s + self.comm_s

    @staticmethod
    def measure(
        dmat: DistributedMatrix, comm: SimComm, *, preconditioned: bool = False
    ) -> "IterationCosts":
        """Price one CG iteration by replaying its communication pattern
        on a scratch copy of the communicator's cost machinery."""
        core = comm.machine.node.core
        fmax = core.ladder.fmax_ghz
        sizes = dmat.partition.sizes.astype(np.float64)
        compute = np.array(
            [
                core.compute_time(float(f), fmax)
                for f in dmat.spmv_flops.astype(np.float64)
            ]
        )
        dense_per_row = DENSE_FLOPS_PER_ROW + (
            PCG_EXTRA_FLOPS_PER_ROW if preconditioned else 0
        )
        compute += np.array(
            [core.compute_time(dense_per_row * s, fmax, kind="dense") for s in sizes]
        )
        # Halo: charge the busiest rank's exchange time as the step cost.
        per_rank = np.zeros(dmat.nranks)
        total_bytes = 0.0
        for (src, dst), nbytes in dmat.halo_pair_bytes.items():
            same = comm.binding.same_node(src, dst)
            cost = comm.network.p2p_time(nbytes, same_node=same)
            per_rank[src] += cost
            per_rank[dst] += cost
            total_bytes += nbytes
        halo_s = float(per_rank.max()) if dmat.nranks > 1 else 0.0
        allreduce_s = ALLREDUCES_PER_ITER * comm.collectives.allreduce(BYTES_PER_ENTRY)
        coll_bytes = ALLREDUCES_PER_ITER * BYTES_PER_ENTRY * dmat.nranks
        return IterationCosts(
            compute_s=compute,
            halo_s=halo_s,
            allreduce_s=allreduce_s,
            bytes_per_iter=total_bytes + coll_bytes,
        )


class DistributedCG:
    """Restartable CG over a :class:`DistributedMatrix`.

    Parameters
    ----------
    dmat, b:
        The SPD system.
    x0:
        Initial guess (defaults to zero, the paper's FI reference point).
    tol:
        Relative-residual convergence tolerance (paper: 1e-12 on the real
        suite; our scaled suite uses 1e-8, see ``matrices/suite.py``).
    max_iters:
        Hard iteration cap.
    preconditioner:
        ``None`` for the paper's plain CG, or ``"jacobi"`` for
        diagonally preconditioned CG — the extension hook for the
        paper's future-work direction of studying more applications.
        All recovery schemes work unchanged: they rewrite x and the
        solver restarts the (preconditioned) recurrence.
    backend:
        How the kernels execute (:mod:`repro.core.backends`):
        ``"batched"`` (default) runs all ranks as one vectorized kernel
        sequence per iteration; ``"loop"`` is the rank-by-rank reference
        execution.  Bit-identical by contract — the backend changes
        wall-clock cost only, never a single bit of the numerics.
    """

    def __init__(
        self,
        dmat: DistributedMatrix,
        b: np.ndarray,
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-8,
        max_iters: int = 200_000,
        preconditioner: str | None = None,
        backend: str = DEFAULT_BACKEND,
    ) -> None:
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (dmat.n,):
            raise ValueError(f"b of shape {b.shape} does not match n={dmat.n}")
        if tol <= 0:
            raise ValueError("tolerance must be positive")
        if max_iters < 1:
            raise ValueError("max_iters must be positive")
        self.dmat = dmat
        self.b = b
        self.tol = tol
        self.max_iters = max_iters
        self.x0 = (
            np.zeros(dmat.n) if x0 is None else np.array(x0, dtype=np.float64, copy=True)
        )
        if self.x0.shape != (dmat.n,):
            raise ValueError("x0 does not match system size")
        if preconditioner not in (None, "jacobi"):
            raise ValueError("preconditioner must be None or 'jacobi'")
        self.preconditioner = preconditioner
        if preconditioner == "jacobi":
            diag = dmat.a.diagonal()
            if np.any(diag <= 0):
                raise ValueError("Jacobi preconditioning needs a positive diagonal")
            self._minv = 1.0 / diag
        else:
            self._minv = None
        bnorm = float(np.linalg.norm(b))
        self._bnorm = bnorm if bnorm > 0 else 1.0
        self.backend = backend
        self._backend = make_backend(backend, self)  # validates the name
        self.residual_history: list[float] = []
        self.state = self._fresh_state(self.x0)
        self.restarts = 0

    # ------------------------------------------------------------------
    def _fresh_state(self, x: np.ndarray) -> CGState:
        r = self.b - self._backend.matvec(x)
        z = r * self._minv if self._minv is not None else r
        return CGState(x=np.array(x, copy=True), r=r, p=z.copy(), rz=float(r @ z))

    def restart(self) -> None:
        """Recompute the true residual from the current x and reset the
        search direction.  Called after any recovery that rewrites x."""
        st = self.state
        it = st.iteration
        self.state = self._fresh_state(st.x)
        self.state.iteration = it
        self.restarts += 1

    # ------------------------------------------------------------------
    @property
    def relative_residual(self) -> float:
        if self._minv is None:
            return float(np.sqrt(max(self.state.rz, 0.0)) / self._bnorm)
        return float(np.linalg.norm(self.state.r) / self._bnorm)

    @property
    def converged(self) -> bool:
        return self.relative_residual <= self.tol

    @property
    def iteration(self) -> int:
        return self.state.iteration

    def step(self) -> float:
        """One CG iteration; returns the new relative residual."""
        st = self.state
        q = self._backend.matvec(st.p)
        pq = float(st.p @ q)
        if pq <= 0 or not np.isfinite(pq):
            # Breakdown: the state is numerically dead (e.g. NaN-poisoned
            # by an unrecovered fault).  Re-anchor on the true residual.
            self.restart()
            st = self.state
            q = self._backend.matvec(st.p)
            pq = float(st.p @ q)
            if pq <= 0 or not np.isfinite(pq):
                raise FloatingPointError(
                    "CG breakdown: matrix not SPD or state unrecoverable"
                )
        alpha = st.rz / pq
        st.x += alpha * st.p
        st.r -= alpha * q
        z = st.r * self._minv if self._minv is not None else st.r
        rz_new = float(st.r @ z)
        beta = rz_new / st.rz if st.rz > 0 else 0.0
        st.p = z + beta * st.p
        st.rz = rz_new
        st.iteration += 1
        rel = self.relative_residual
        self.residual_history.append(rel)
        return rel

    def step_span(self, max_steps: int) -> tuple[int, bool]:
        """Run up to ``max_steps`` iterations in one tight fused loop.

        Bit-identical to calling :meth:`step` repeatedly: the kernel
        performs the same floating-point operations in the same order,
        records the same residual-history values, and checks convergence
        after every iteration, so a span never overshoots the tolerance.
        It stops early on convergence, or on CG breakdown *before*
        consuming the broken iteration — callers then invoke :meth:`step`
        once, whose restart-and-retry handling covers breakdown exactly
        as the legacy loop does.

        Residuals are written into a preallocated scratch array and
        spliced onto ``residual_history`` at span end.  Returns
        ``(iterations_taken, breakdown)``.

        Execution is delegated to the configured backend
        (:mod:`repro.core.backends`): ``batched`` fuses all ranks into
        one vectorized kernel sequence per iteration, ``loop`` steps
        the ranks one at a time — both honour this contract bit for
        bit.
        """
        return self._backend.step_span(max_steps)

    def solve_fault_free(self) -> int:
        """Run to convergence with no faults; returns iterations used."""
        while not self.converged and self.state.iteration < self.max_iters:
            taken, breakdown = self.step_span(
                self.max_iters - self.state.iteration
            )
            if breakdown:
                self.step()  # legacy restart-and-retry breakdown handling
        return self.state.iteration
