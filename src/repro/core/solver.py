"""The resilient solver: CG + recovery scheme on the simulated cluster.

:class:`ResilientSolver` owns the whole co-simulation the paper's
experiments perform on real hardware: it steps the distributed CG, prices
every iteration on the cluster substrate, feeds the phase-tagged energy
account and the simulated RAPL meter, injects scheduled faults into the
dynamic state, and dispatches recovery to the configured Table-2 scheme.
It implements the :class:`~repro.core.recovery.base.RecoveryServices`
facade the schemes charge their costs through.
"""

from __future__ import annotations

from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.cluster.comm import SimComm
from repro.cluster.machine import MachineSpec, paper_machine
from repro.cluster.network import NetworkModel
from repro.core.backends import DEFAULT_BACKEND, backend_names
from repro.core.cg import DistributedCG, IterationCosts
from repro.core.errors import ConvergenceError
from repro.core.recovery.base import RecoveryScheme
from repro.core.report import SolveReport
from repro.faults.events import FaultEvent
from repro.faults.injector import FaultInjector
from repro.faults.schedule import EmptySchedule, FaultSchedule
from repro.matrices import cache as problem_cache
from repro.matrices.distributed import DistributedMatrix
from repro.matrices.partition import BlockRowPartition
from repro.power.capping import frequency_under_cap
from repro.power.dvfs import DvfsController, Governor
from repro.power.energy import EnergyAccount, PhaseTag, repeat_add
from repro.power.model import CoreState, PowerModel
from repro.power.rapl import RaplMeter


@dataclass
class SolverConfig:
    """Everything that parameterises one resilient solve."""

    nranks: int = 4
    tol: float = 1e-8
    max_iters: int = 200_000
    machine: MachineSpec = field(default_factory=paper_machine)
    network: NetworkModel = field(default_factory=NetworkModel)
    power: PowerModel = field(default_factory=PowerModel)
    seed: int = 0
    #: None for the paper's plain CG, "jacobi" for preconditioned CG
    #: (extension; see DistributedCG).
    preconditioner: str | None = None
    #: Machine power budget in watts (RAPL-limit style).  The solver
    #: derates every core to the highest ladder frequency whose
    #: all-active power fits the cap; None = uncapped (f_max).
    power_cap_w: float | None = None
    #: Record a structured event stream (faults, recoveries,
    #: checkpoints, restarts) in the report's ``details["trace"]``.
    trace: bool = False
    #: Fault-free iteration count; iterations beyond it are charged to
    #: the EXTRA phase.  Computed internally when a schedule is present
    #: and no value is supplied.
    baseline_iters: int | None = None
    #: Span-batched fast execution (DESIGN.md §5e): fault-free stretches
    #: between scheduled events run as one tight numeric kernel with
    #: span-level bookkeeping replay.  Bit-identical to the legacy
    #: per-iteration loop (tests/core/test_fast_equivalence.py); the
    #: legacy path stays selectable for those regression tests.
    fast: bool = True
    #: Execution backend for the CG kernels (repro.core.backends):
    #: "batched" (default) vectorizes all ranks into one kernel sequence
    #: per iteration; "loop" is the rank-by-rank reference execution.
    #: Bit-identical by contract (tests/core/test_backend_equivalence.py);
    #: orthogonal to ``fast`` (which batches *iterations into spans*,
    #: while ``backend`` batches *ranks within an iteration*).
    backend: str = DEFAULT_BACKEND

    def __post_init__(self) -> None:
        if self.nranks < 1:
            raise ValueError("need at least one rank")
        if self.tol <= 0:
            raise ValueError("tolerance must be positive")
        if self.max_iters < 1:
            raise ValueError("max_iters must be positive")
        if self.power_cap_w is not None and self.power_cap_w <= 0:
            raise ValueError("power cap must be positive")
        if self.backend not in backend_names():
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                f"known: {', '.join(backend_names())}"
            )


class ResilientSolver:
    """Solve ``A x = b`` under faults with a pluggable recovery scheme."""

    def __init__(
        self,
        a,
        b: np.ndarray,
        *,
        scheme: RecoveryScheme | None = None,
        schedule: FaultSchedule | None = None,
        config: SolverConfig | None = None,
        x0: np.ndarray | None = None,
    ) -> None:
        self.config = config or SolverConfig()
        cfg = self.config
        if isinstance(a, DistributedMatrix):
            if a.nranks != cfg.nranks:
                raise ValueError(
                    f"matrix distributed over {a.nranks} ranks but config "
                    f"says {cfg.nranks}"
                )
            self._dmat = a
        else:
            # Content-keyed: repeated solves over the same matrix share
            # one halo analysis (repro.matrices.cache).
            self._dmat = problem_cache.distributed_matrix(
                sp.csr_matrix(a), cfg.nranks
            )
        self.scheme = scheme
        self.schedule = schedule or EmptySchedule()
        self.comm = SimComm(cfg.machine, cfg.nranks, cfg.network)
        self.cg = DistributedCG(
            self._dmat,
            b,
            x0=x0,
            tol=cfg.tol,
            max_iters=cfg.max_iters,
            preconditioner=cfg.preconditioner,
            backend=cfg.backend,
        )
        if cfg.power_cap_w is not None:
            op = frequency_under_cap(cfg.power, cfg.nranks, cfg.power_cap_w)
            self.f_op_ghz = op.f_ghz
        else:
            self.f_op_ghz = cfg.power.ladder.fmax_ghz
        self._slowdown = cfg.power.ladder.fmax_ghz / self.f_op_ghz
        # Measured at f_max and memoized by content key; the DVFS derate
        # below builds a private per-solve copy, so the cached entry
        # stays frequency-independent.
        costs = problem_cache.iteration_costs(
            self._dmat, self.comm, preconditioned=cfg.preconditioner is not None
        )
        if self._slowdown != 1.0:
            costs = IterationCosts(
                compute_s=costs.compute_s * self._slowdown,
                halo_s=costs.halo_s,
                allreduce_s=costs.allreduce_s,
                bytes_per_iter=costs.bytes_per_iter,
            )
        self.costs = costs
        self.dvfs = DvfsController(cfg.nranks, cfg.power.ladder)
        if self._slowdown != 1.0:
            self.dvfs.set_governor(Governor.USERSPACE)
            self.dvfs.set_all(self.f_op_ghz)
        self.account = EnergyAccount()
        self.rapl = RaplMeter()
        self.injector = FaultInjector(self._dmat.partition, seed=cfg.seed)
        if cfg.trace:
            from repro.obs.telemetry import Telemetry

            # Solver telemetry rides the simulated clock: every event,
            # span and metric is stamped with deterministic sim time, so
            # traced runs stay bit-identical across worker pools.
            self.obs: "Telemetry | None" = Telemetry.for_solver(
                clock=lambda: self.comm.now
            )
            self.trace = self.obs.events
            self.account.on_charge = self._on_charge
        else:
            self.obs = None
            self.trace = None
        self._last_phase_tag: PhaseTag | None = None
        self._open_phase: list | None = None  # [tag, power, t0, t1]
        self._precompute_iteration_charges()

    # ==================================================================
    # RecoveryServices facade
    # ==================================================================
    @property
    def dmat(self) -> DistributedMatrix:
        return self._dmat

    @property
    def partition(self) -> BlockRowPartition:
        return self._dmat.partition

    @property
    def b(self) -> np.ndarray:
        return self.cg.b

    @property
    def x0(self) -> np.ndarray:
        return self.cg.x0

    @property
    def nranks(self) -> int:
        return self.config.nranks

    @property
    def iteration_wall_s(self) -> float:
        return self.costs.wall_s

    def charge_phase(self, tag: PhaseTag, duration_s: float, power_w: float) -> None:
        self._emit(tag, duration_s, power_w)

    def charge_overlapped(self, tag: PhaseTag, energy_j: float) -> None:
        self.account.charge_energy(tag, energy_j)

    def power_compute_w(self) -> float:
        return self._p_core_active * self.nranks

    def power_checkpoint_w(self) -> float:
        return self._p_core_idle_fmax * self.nranks

    def power_reconstruct_w(self, *, dvfs: bool) -> float:
        idle = self._p_core_idle_fmin if dvfs else self._p_core_idle_fmax
        return self._p_core_active + (self.nranks - 1) * idle

    def power_idle_w(self) -> float:
        return self._p_core_idle_fmax * self.nranks

    def local_compute_s(self, flops: float, *, kind: str = "spmv") -> float:
        core = self.comm.machine.node.core
        return core.compute_time(flops, self.f_op_ghz, kind=kind)

    def collective_allreduce_s(self, nbytes: float) -> float:
        return self.comm.collectives.allreduce(nbytes)

    def p2p_s(self, src: int, dst: int, nbytes: float) -> float:
        if src == dst:
            return 0.0
        same = self.comm.binding.same_node(src, dst)
        return self.comm.network.p2p_time(nbytes, same_node=same)

    def interconnect_p2p_s(self, nbytes: float) -> float:
        return self.comm.network.p2p_time(nbytes, same_node=False)

    def restart_cost_s(self) -> float:
        return self.costs.wall_s

    def apply_dvfs_reconstruct(self, victims) -> None:
        now = self.comm.now
        self.dvfs.set_governor(Governor.USERSPACE, time_s=now)
        ladder = self.config.power.ladder
        self.dvfs.set_all(ladder.fmin_ghz, time_s=now)
        if not isinstance(victims, (list, tuple)):
            victims = (int(victims),)
        # the reconstructing cores run at the cap-respecting frequency
        for victim_rank in victims:
            self.dvfs.set_frequency(victim_rank, self.f_op_ghz, time_s=now)

    def release_dvfs(self) -> None:
        now = self.comm.now
        if self._slowdown != 1.0:
            self.dvfs.set_all(self.f_op_ghz, time_s=now)
        else:
            self.dvfs.set_all(self.config.power.ladder.fmax_ghz, time_s=now)
            self.dvfs.set_governor(Governor.PERFORMANCE, time_s=now)

    def span(self, name: str, **attrs):
        """A sim-time span on this solve's telemetry (no-op untraced)."""
        if self.obs is None:
            return nullcontext()
        return self.obs.spans.span(name, **attrs)

    @property
    def metrics(self):
        """This solve's metrics registry, or ``None`` untraced."""
        return self.obs.metrics if self.obs is not None else None

    # ==================================================================
    # internals
    # ==================================================================
    def _on_charge(self, tag: PhaseTag, time_s: float, energy_j: float) -> None:
        """Energy-account tap: per-phase metrics and transition events."""
        m = self.obs.metrics
        m.counter("phase.time_s", phase=tag.value).inc(time_s)
        m.counter("phase.energy_j", phase=tag.value).inc(energy_j)
        if time_s <= 0 or tag is self._last_phase_tag:
            return
        # One event per *entry* into a resilience phase, not per charge:
        # contiguous EXTRA iterations collapse to a single transition.
        # REDUNDANT is overlapped (zero-time) and never reached here.
        if tag.is_resilience:
            from repro.harness.tracing import PhaseEntered

            self.trace.record(
                PhaseEntered(
                    iteration=self.cg.iteration,
                    sim_time_s=self.comm.now,
                    phase=tag.value,
                    from_phase=(
                        self._last_phase_tag.value if self._last_phase_tag else ""
                    ),
                )
            )
        self._last_phase_tag = tag
    def _precompute_iteration_charges(self) -> None:
        pm = self.config.power
        f_op = self.f_op_ghz
        fmin = pm.ladder.fmin_ghz
        self._p_core_active = pm.core_power(f_op, CoreState.ACTIVE)
        self._p_core_idle_fmax = pm.core_power(f_op, CoreState.IDLE)
        self._p_core_idle_fmin = pm.core_power(fmin, CoreState.IDLE)
        c = self.costs
        sum_compute = float(c.compute_s.sum())
        t_max = c.compute_max_s
        n = self.nranks
        # Stragglers idle-wait at f_max until the reduction completes.
        self._iter_compute_energy = (
            self._p_core_active * sum_compute
            + self._p_core_idle_fmax * (n * t_max - sum_compute)
        )
        self._iter_comm_energy = n * self._p_core_active * c.comm_s
        self._iter_energy = self._iter_compute_energy + self._iter_comm_energy
        self._iter_power_avg = (
            self._iter_energy / c.wall_s if c.wall_s > 0 else 0.0
        )

    def _emit(self, tag: PhaseTag, duration_s: float, power_w: float) -> None:
        """Charge the account, advance simulated time, extend the RAPL log."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        is_checkpoint = tag is PhaseTag.CHECKPOINT
        if self.trace is not None and is_checkpoint:
            from repro.harness.tracing import CheckpointWritten

            self.trace.record(
                CheckpointWritten(
                    iteration=self.cg.iteration,
                    sim_time_s=self.comm.now,
                    duration_s=duration_s,
                )
            )
        ctx = (
            self.span("checkpoint.write", iteration=self.cg.iteration)
            if self.obs is not None and is_checkpoint
            else nullcontext()
        )
        with ctx:
            energy = self.account.charge(tag, time_s=duration_s, power_w=power_w)
            mult = self.scheme.energy_multiplier if self.scheme else 1.0
            if mult > 1.0:
                # The DMR replica draws the same power concurrently.
                self.account.charge_energy(
                    PhaseTag.REDUNDANT, (mult - 1.0) * energy
                )
            if duration_s == 0:
                return
            t0 = self.comm.now
            self.comm.clocks.synchronize(duration_s)
            self._rapl_append(tag.value, t0, self.comm.now, power_w * mult)

    def _rapl_append(self, tag: str, t0: float, t1: float, power_w: float) -> None:
        """Append to the RAPL log, merging contiguous equal-power phases."""
        if (
            self._open_phase is not None
            and self._open_phase[0] == tag
            and abs(self._open_phase[1] - power_w) < 1e-9
            and abs(self._open_phase[3] - t0) < 1e-9
        ):
            self._open_phase[3] = t1
        else:
            self._flush_phase()
            self._open_phase = [tag, power_w, t0, t1]

    def _flush_phase(self) -> None:
        if self._open_phase is not None:
            tag, power, t0, t1 = self._open_phase
            self.rapl.record(tag, t0, t1, power)
            self._open_phase = None

    def _charge_iteration(self, is_extra: bool) -> None:
        """Book one CG iteration: account charges split solve/overhead,
        a single merged RAPL phase at the iteration-average power."""
        c = self.costs
        mult = self.scheme.energy_multiplier if self.scheme else 1.0
        if is_extra:
            energy = self.account.charge(
                PhaseTag.EXTRA, time_s=c.wall_s, power_w=self._iter_power_avg
            )
        else:
            compute_power = (
                self._iter_compute_energy / c.compute_max_s
                if c.compute_max_s > 0
                else 0.0
            )
            energy = self.account.charge(
                PhaseTag.SOLVE, time_s=c.compute_max_s, power_w=compute_power
            )
            if c.comm_s > 0:
                energy += self.account.charge(
                    PhaseTag.OVERHEAD, time_s=c.comm_s, power_w=self.power_compute_w()
                )
        if mult > 1.0:
            self.account.charge_energy(PhaseTag.REDUNDANT, (mult - 1.0) * energy)
        # Flat overlapped retention cost (ESR's redundant-copy streaming).
        # Schemes set at most one of energy_multiplier / overlap energy,
        # so the span replay's per-tag accumulation order stays exact.
        ov = self.scheme.overlap_energy_per_iteration_j if self.scheme else 0.0
        if ov > 0.0:
            self.account.charge_energy(PhaseTag.REDUNDANT, ov)
        t0 = self.comm.now
        self.comm.clocks.synchronize(c.wall_s)
        tag = "extra" if is_extra else "iteration"
        self._rapl_append(tag, t0, self.comm.now, self._iter_power_avg * mult)
        self.comm.traffic.bytes_p2p += c.bytes_per_iter
        self.comm.traffic.messages += max(0, len(self._dmat.halo_pair_bytes))
        self.comm.traffic.collectives += 2

    def _charge_span(self, n: int, is_extra: bool) -> None:
        """Book ``n`` identical CG iterations in one go.

        Float-faithfully replays ``n`` calls of :meth:`_charge_iteration`
        (DESIGN.md §5e): account charges, clocks, traffic, the RAPL log
        and — when traced — phase metrics and transition events all end
        up bit-identical to the per-iteration path.  Replay is exact
        because every per-iteration quantity is constant by construction
        (:class:`IterationCosts`) and per-iteration accumulation of a
        constant is a scalar recurrence (:func:`repeat_add`).
        """
        if n <= 0:
            return
        c = self.costs
        mult = self.scheme.energy_multiplier if self.scheme else 1.0
        account = self.account
        wall = c.wall_s
        if is_extra:
            energy = account.charge_span(
                PhaseTag.EXTRA, time_s=wall, power_w=self._iter_power_avg, n=n
            )
        else:
            compute_power = (
                self._iter_compute_energy / c.compute_max_s
                if c.compute_max_s > 0
                else 0.0
            )
            energy = account.charge_span(
                PhaseTag.SOLVE, time_s=c.compute_max_s, power_w=compute_power, n=n
            )
            if c.comm_s > 0:
                energy += account.charge_span(
                    PhaseTag.OVERHEAD,
                    time_s=c.comm_s,
                    power_w=self.power_compute_w(),
                    n=n,
                )
        if mult > 1.0:
            account.charge_energy_span(
                PhaseTag.REDUNDANT, (mult - 1.0) * energy, n
            )
        ov = self.scheme.overlap_energy_per_iteration_j if self.scheme else 0.0
        if ov > 0.0:
            account.charge_energy_span(PhaseTag.REDUNDANT, ov, n)
        # Every per-iteration charge synchronises all ranks, so clocks
        # stay uniform throughout a solve and a span's clock advance
        # replays as a scalar accumulation.
        clocks = self.comm.clocks
        t0 = clocks.now
        t1 = repeat_add(t0, wall, n)
        clocks.jump_to(t1)
        # The legacy path's contiguous equal-power iterations already
        # merge into one open RAPL phase; a single span-wide append
        # produces the identical log.
        tag = "extra" if is_extra else "iteration"
        self._rapl_append(tag, t0, t1, self._iter_power_avg * mult)
        traffic = self.comm.traffic
        traffic.bytes_p2p = repeat_add(traffic.bytes_p2p, c.bytes_per_iter, n)
        traffic.messages += n * max(0, len(self._dmat.halo_pair_bytes))
        traffic.collectives += 2 * n
        if self.obs is not None:
            self._replay_span_observability(n, is_extra, t0)

    def _replay_span_observability(
        self, n: int, is_extra: bool, t_span_start: float
    ) -> None:
        """Replay what ``n`` per-iteration ``on_charge`` taps (plus the
        per-iteration ``solver.iterations`` increment) would have done.
        ``charge_span`` bypasses the tap, so the fast path owns this."""
        c = self.costs
        mult = self.scheme.energy_multiplier if self.scheme else 1.0
        m = self.obs.metrics
        counter = m.counter
        pairs: list[tuple[PhaseTag, float, float]] = []
        if is_extra:
            e_extra = c.wall_s * self._iter_power_avg
            pairs.append((PhaseTag.EXTRA, c.wall_s, e_extra))
            energy = e_extra
        else:
            compute_power = (
                self._iter_compute_energy / c.compute_max_s
                if c.compute_max_s > 0
                else 0.0
            )
            e_solve = c.compute_max_s * compute_power
            pairs.append((PhaseTag.SOLVE, c.compute_max_s, e_solve))
            energy = e_solve
            if c.comm_s > 0:
                e_comm = c.comm_s * self.power_compute_w()
                pairs.append((PhaseTag.OVERHEAD, c.comm_s, e_comm))
                energy += e_comm
        if mult > 1.0:
            pairs.append((PhaseTag.REDUNDANT, 0.0, (mult - 1.0) * energy))
        ov = self.scheme.overlap_energy_per_iteration_j if self.scheme else 0.0
        if ov > 0.0:
            pairs.append((PhaseTag.REDUNDANT, 0.0, ov))
        for tag, time_s, energy_j in pairs:
            ct = counter("phase.time_s", phase=tag.value)
            ct.value = repeat_add(ct.value, time_s, n)
            ce = counter("phase.energy_j", phase=tag.value)
            ce.value = repeat_add(ce.value, energy_j, n)
        # n repeated ``+= 1.0`` equals ``+= n`` exactly for counts far
        # below 2**53, so the iteration counter needs no replay loop.
        counter("solver.iterations").inc(float(n))
        # Transition events: within a span only the *first* charge can
        # change phase (iterations repeat SOLVE/OVERHEAD or EXTRA), and
        # only EXTRA is a resilience phase that records a PhaseEntered.
        if is_extra:
            if c.wall_s > 0 and self._last_phase_tag is not PhaseTag.EXTRA:
                from repro.harness.tracing import PhaseEntered

                self.trace.record(
                    PhaseEntered(
                        iteration=self.cg.iteration - n + 1,
                        sim_time_s=t_span_start,
                        phase=PhaseTag.EXTRA.value,
                        from_phase=(
                            self._last_phase_tag.value
                            if self._last_phase_tag
                            else ""
                        ),
                    )
                )
            if c.wall_s > 0:
                self._last_phase_tag = PhaseTag.EXTRA
        else:
            if c.compute_max_s > 0:
                self._last_phase_tag = PhaseTag.SOLVE
            if c.comm_s > 0:
                self._last_phase_tag = PhaseTag.OVERHEAD

    def _expand_victims(self, event: FaultEvent) -> list[int]:
        """Expand the event's blast radius into concrete victim ranks.

        Every rank in ``event.victims`` is expanded by the event's scope
        independently; the union preserves first-appearance order, so a
        single-victim event reproduces the historical expansion exactly.
        """
        from repro.faults.events import FaultScope

        for v in event.victims:
            if v >= self.nranks:
                raise ValueError(
                    f"victim rank {v} outside [0, {self.nranks})"
                )
        if event.scope is FaultScope.PROCESS:
            return list(event.victims)
        if event.scope is FaultScope.SYSTEM:
            return list(range(self.nranks))
        out: list[int] = []
        seen: set[int] = set()
        for v in event.victims:  # NODE
            node = self.comm.binding.node_of(v)
            for r in self.comm.binding.ranks_on_node(node):
                if r not in seen:
                    seen.add(r)
                    out.append(r)
        return out

    def _handle_fault(self, event: FaultEvent) -> None:
        """Damage and recover every rank in the event's blast radius.

        Block-local schemes (fills, redundancy) recover one lost block
        at a time, each reconstruction seeing the blocks recovered
        before it; joint schemes (interpolation unions, ESR) repair the
        whole victim set in one recover() call; global schemes
        (checkpoint rollback) restore the entire state in one shot.
        """
        cg = self.cg
        victims = self._expand_victims(event)
        self.injector.inject(
            event, cg.state.x, cg.state.r, cg.state.p, victims=victims
        )
        t_fault = self.comm.now
        if self.trace is not None:
            from repro.harness.tracing import FaultInjected

            self.trace.record(
                FaultInjected(
                    iteration=event.iteration,
                    sim_time_s=t_fault,
                    victim_rank=event.victim_rank,
                    fault_class=event.fault_class.label,
                    scope=event.scope.value,
                    n_blocks_lost=len(victims),
                )
            )
            self.obs.metrics.counter(
                "solver.faults",
                fault_class=event.fault_class.label,
                scope=event.scope.value,
            ).inc()
        if len(victims) > 1:
            # Wide-scope damage: neutralise every lost block first so a
            # block-local reconstruction never reads a sibling's poison.
            for v in victims:
                cg.state.x[self.partition.slice_of(v)] = 0.0
        if self.scheme.recovers_globally:
            recover_events = [
                FaultEvent(
                    event.iteration, victims[0], event.fault_class, event.scope
                )
            ]
        elif self.scheme.recovers_jointly and len(victims) > 1:
            recover_events = [
                FaultEvent(
                    event.iteration,
                    victims[0],
                    event.fault_class,
                    event.scope,
                    victims=tuple(victims),
                )
            ]
        else:
            recover_events = [
                FaultEvent(event.iteration, v, event.fault_class, event.scope)
                for v in victims
            ]
        outcomes = []
        scheme_label = self.scheme.name.lower()
        for ev in recover_events:
            with self.span(f"recovery.{scheme_label}", rank=ev.victim_rank):
                outcome = self.scheme.recover(self, cg.state, ev)
            outcomes.append(outcome)
            if self.trace is not None:
                from repro.harness.tracing import RecoveryApplied

                self.trace.record(
                    RecoveryApplied(
                        iteration=ev.iteration,
                        sim_time_s=self.comm.now,
                        scheme=self.scheme.name,
                        victim_rank=ev.victim_rank,
                        needs_restart=outcome.needs_restart,
                        construct_time_s=outcome.construct_time_s,
                    )
                )
                m = self.obs.metrics
                m.counter("solver.recoveries", scheme=self.scheme.name).inc()
                m.histogram(
                    "recovery.construct_s", scheme=self.scheme.name
                ).observe(outcome.construct_time_s)
                self.obs.recovery_latency_histogram(self.scheme.name).observe(
                    self.comm.now - t_fault
                )
        if any(o.needs_restart for o in outcomes):
            with self.span("solver.restart", iteration=event.iteration):
                cg.restart()
                self._emit(
                    PhaseTag.EXTRA, self.restart_cost_s(), self.power_compute_w()
                )
            if self.trace is not None:
                from repro.harness.tracing import SolverRestarted

                self.trace.record(
                    SolverRestarted(
                        iteration=event.iteration, sim_time_s=self.comm.now
                    )
                )
                self.obs.metrics.counter("solver.restarts").inc()

    def _fault_free_horizon(self) -> int:
        """Iterations of a fault-free run (for schedules and EXTRA split)."""
        probe = DistributedCG(
            self._dmat,
            self.cg.b,
            x0=self.cg.x0,
            tol=self.config.tol,
            max_iters=self.config.max_iters,
            preconditioner=self.config.preconditioner,
            backend=self.config.backend,
        )
        iters = probe.solve_fault_free()
        if not probe.converged:
            raise ConvergenceError(
                tol=self.config.tol,
                final_residual=probe.relative_residual,
                iterations=iters,
            )
        return iters

    # ==================================================================
    # main loop
    # ==================================================================
    def solve(self) -> SolveReport:
        """Run to convergence under the configured faults and scheme."""
        cfg = self.config
        baseline = cfg.baseline_iters
        events: list[FaultEvent] = []
        if not isinstance(self.schedule, EmptySchedule):
            if baseline is None:
                baseline = self._fault_free_horizon()
            events = self.schedule.events(
                nranks=cfg.nranks, horizon_iters=baseline
            )
        pending = deque(sorted(events, key=lambda e: e.iteration))
        handled: list[FaultEvent] = []
        if self.scheme is not None:
            self.scheme.setup(self)

        with self.span(
            "solve", scheme=self.scheme.name if self.scheme else "FF"
        ):
            if cfg.fast:
                self._run_fast(pending, handled, baseline)
            else:
                self._run_legacy(pending, handled, baseline)

        self._flush_phase()
        details: dict = self._finish_details(baseline)
        return self._build_report(handled, baseline, details)

    def _run_legacy(
        self,
        pending: deque[FaultEvent],
        handled: list[FaultEvent],
        baseline: int | None,
    ) -> None:
        """The reference per-iteration loop: step, charge, hook, events."""
        cfg = self.config
        cg = self.cg
        while not cg.converged and cg.iteration < cfg.max_iters:
            cg.step()
            is_extra = baseline is not None and cg.iteration > baseline
            self._charge_iteration(is_extra)
            if self.obs is not None:
                self.obs.metrics.counter("solver.iterations").inc()
            if self.scheme is not None:
                self.scheme.on_iteration_end(self, cg.state)
            self._process_due_events(pending, handled)

    def _run_fast(
        self,
        pending: deque[FaultEvent],
        handled: list[FaultEvent],
        baseline: int | None,
    ) -> None:
        """Span-batched loop, bit-identical to :meth:`_run_legacy`.

        Fault-free stretches run as one tight numeric kernel
        (:meth:`~repro.core.cg.DistributedCG.step_span`) plus one
        bookkeeping replay (:meth:`_charge_span`).  Span boundaries are
        everything the legacy loop can observe between iterations: the
        next scheduled fault, the scheme's hook cadence
        (:meth:`~repro.core.recovery.base.RecoveryScheme.next_hook_iteration`),
        the baseline→EXTRA crossover, and the iteration cap; convergence
        and CG breakdown are checked per iteration inside the kernel.
        """
        cfg = self.config
        cg = self.cg
        scheme = self.scheme
        # A scheme that never overrides the hook needs no hook calls
        # (the base hook is a no-op); one that does is called once per
        # span end, with spans capped at its declared cadence.
        has_hook = scheme is not None and (
            type(scheme).on_iteration_end is not RecoveryScheme.on_iteration_end
        )
        max_iters = cfg.max_iters
        while not cg.converged and cg.iteration < max_iters:
            it = cg.iteration
            end = max_iters
            if pending:
                # Events fire after the iteration they are scheduled at
                # (or after the next iteration when already past due).
                due = pending[0].iteration
                end = min(end, due if due > it else it + 1)
            if baseline is not None and it < baseline:
                # EXTRA starts right after the baseline iteration; a span
                # must not straddle the crossover.
                end = min(end, baseline)
            if has_hook:
                nh = scheme.next_hook_iteration(it)
                end = min(end, it + 1 if nh is None else nh)
            end = max(int(min(end, max_iters)), it + 1)
            taken, breakdown = cg.step_span(end - it)
            if taken:
                self._charge_span(
                    taken,
                    is_extra=baseline is not None and cg.iteration > baseline,
                )
            if breakdown:
                # Fall back to the legacy stepper for the broken
                # iteration: its restart-and-retry is the reference.
                cg.step()
                self._charge_span(
                    1, is_extra=baseline is not None and cg.iteration > baseline
                )
            if has_hook:
                scheme.on_iteration_end(self, cg.state)
            self._process_due_events(pending, handled)

    def _process_due_events(
        self, pending: deque[FaultEvent], handled: list[FaultEvent]
    ) -> None:
        cg = self.cg
        while pending and pending[0].iteration <= cg.iteration:
            event = pending.popleft()
            if event.fault_class.needs_recovery:
                if self.scheme is None:
                    raise RuntimeError(
                        "fault injected but no recovery scheme configured"
                    )
                self._handle_fault(event)
            handled.append(event)

    def _finish_details(self, baseline: int | None) -> dict:
        cg = self.cg
        details: dict = {
            "restarts": cg.restarts,
            "iteration_wall_s": self.costs.wall_s,
            "dvfs_transitions": self.dvfs.transition_count(),
            "operating_frequency_ghz": self.f_op_ghz,
        }
        if self.obs is not None:
            m = self.obs.metrics
            m.gauge("solver.sim_time_s").set(self.comm.now)
            m.gauge("solver.energy_j").set(self.account.total_energy_j)
            m.gauge("solver.relative_residual").set(cg.relative_residual)
            m.gauge("solver.converged").set(1.0 if cg.converged else 0.0)
            details["trace"] = self.trace
            details["telemetry"] = self.obs
        if self.scheme is not None:
            details["scheme_details"] = _scheme_details(self.scheme)
        return details

    def _build_report(
        self, handled: list[FaultEvent], baseline: int | None, details: dict
    ) -> SolveReport:
        cg = self.cg
        return SolveReport(
            scheme=self.scheme.name if self.scheme else "FF",
            converged=cg.converged,
            iterations=cg.iteration,
            final_relative_residual=cg.relative_residual,
            residual_history=np.asarray(cg.residual_history),
            time_s=self.comm.now,
            account=self.account,
            rapl=self.rapl,
            faults=handled,
            traffic=self.comm.traffic,
            baseline_iters=baseline,
            details=details,
        )


def _scheme_details(scheme: RecoveryScheme) -> dict:
    out: dict = {}
    for attr in ("constructions", "recoveries", "rollback_reexecute_iters"):
        if hasattr(scheme, attr):
            out[attr] = getattr(scheme, attr)
    manager = getattr(scheme, "manager", None)
    if manager is not None:
        if hasattr(manager, "writes"):
            out["checkpoints_written"] = manager.writes
            out["interval_iters"] = manager.interval_iters
        else:  # multi-level manager
            out["memory_writes"] = manager.memory_writes
            out["disk_writes"] = manager.disk_writes
            out["memory_restores"] = manager.memory_restores
            out["disk_restores"] = manager.disk_restores
    if hasattr(scheme, "restore_levels"):
        out["restore_levels"] = list(scheme.restore_levels)
    return out
