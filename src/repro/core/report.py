"""Solve reports: everything an experiment needs to reproduce a figure.

A :class:`SolveReport` is returned by
:meth:`repro.core.solver.ResilientSolver.solve` and carries measured
iterations and residual history (real numerics) alongside the simulated
time/power/energy (cluster substrate), already split by phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.comm import TrafficCounters
from repro.faults.events import FaultEvent
from repro.power.energy import EnergyAccount
from repro.power.rapl import RaplMeter


@dataclass
class SolveReport:
    """Outcome of one resilient solve."""

    scheme: str
    converged: bool
    iterations: int
    final_relative_residual: float
    residual_history: np.ndarray
    time_s: float
    account: EnergyAccount
    rapl: RaplMeter
    faults: list[FaultEvent] = field(default_factory=list)
    traffic: TrafficCounters | None = None
    baseline_iters: int | None = None
    details: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def energy_j(self) -> float:
        return self.account.total_energy_j

    @property
    def average_power_w(self) -> float:
        """Whole-run average power (energy / wall-clock), the quantity
        the paper's P columns report."""
        return self.energy_j / self.time_s if self.time_s > 0 else 0.0

    @property
    def resilience_time_s(self) -> float:
        """T_res: time overhead attributable to resilience."""
        return self.account.resilience_time_s

    @property
    def resilience_energy_j(self) -> float:
        """E_res."""
        return self.account.resilience_energy_j

    @property
    def n_faults(self) -> int:
        return len(self.faults)

    @property
    def extra_iterations(self) -> int:
        """Iterations beyond the fault-free baseline (0 if unknown)."""
        if self.baseline_iters is None:
            return 0
        return max(0, self.iterations - self.baseline_iters)

    def normalized_iterations(self, baseline: "SolveReport") -> float:
        """Iterations relative to a fault-free run (Table 4, Figure 5)."""
        if baseline.iterations == 0:
            raise ValueError("baseline took zero iterations")
        return self.iterations / baseline.iterations

    def normalized_time(self, baseline: "SolveReport") -> float:
        if baseline.time_s <= 0:
            raise ValueError("baseline time is zero")
        return self.time_s / baseline.time_s

    def normalized_energy(self, baseline: "SolveReport") -> float:
        if baseline.energy_j <= 0:
            raise ValueError("baseline energy is zero")
        return self.energy_j / baseline.energy_j

    def normalized_power(self, baseline: "SolveReport") -> float:
        if baseline.average_power_w <= 0:
            raise ValueError("baseline power is zero")
        return self.average_power_w / baseline.average_power_w

    def phase_summary(self) -> dict[str, tuple[float, float]]:
        """``{tag: (seconds, joules)}`` for every charged phase."""
        return {
            tag.value: (c.time_s, c.energy_j)
            for tag, c in sorted(self.account.charges.items(), key=lambda kv: kv[0].value)
        }

    def summary(self) -> str:
        lines = [
            f"scheme={self.scheme} converged={self.converged} "
            f"iters={self.iterations} relres={self.final_relative_residual:.3e}",
            f"time={self.time_s:.4f}s energy={self.energy_j:.2f}J "
            f"avg_power={self.average_power_w:.1f}W faults={self.n_faults}",
        ]
        for tag, (t, e) in self.phase_summary().items():
            lines.append(f"  {tag:<12} {t:10.4f}s {e:12.2f}J")
        return "\n".join(lines)
