"""Weak-scaling projection to large systems (Section 6, Figure 9).

Projects ``T_res``, ``E_res`` and average power for RD, CR-D, CR-M and
the best FW scheme from small-cluster measurements to systems of up to
~10^6 processes, under the paper's assumptions:

* fixed-time weak scaling at 50K nnz per process;
* constant per-processor MTBF (6K hours) => system MTBF shrinks
  linearly, lambda(N) = N / mtbf_per_proc;
* parallel overhead T_O from the SpMV communication model [8]
  (logarithmic rounds) plus a vector-inner-product term linear in
  system size [40];
* t_C of CR-D and t_const of FW grow linearly with system size,
  t_C of CR-M is constant (measured trends, Section 6);
* P_idle = 0.45 P_1 for FW and 0.40 P_1 for CR-D.

All outputs are normalized to the fault-free case *at the same system
size*, exactly as Figure 9 plots them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import (
    CheckpointModel,
    ForwardRecoveryModel,
    ProgressHaltError,
    RedundancyModel,
)

#: Section 6: "a constant per-processor MTBF of 6K hours".
PER_PROC_MTBF_S = 6_000.0 * 3600.0


@dataclass(frozen=True)
class ProjectionConfig:
    """Model parameters, defaulting to values measured on the simulated
    8-node cluster (the reference size ``n0``)."""

    #: Reference system size the per-fault costs were measured at.
    n0: int = 192
    #: Fault-free compute time of the scaled workload (constant under
    #: fixed-time weak scaling), seconds.
    t_solve_s: float = 600.0
    #: Single-core execution power, watts.
    p1_w: float = 10.0
    #: Per-proc MTBF (seconds); system rate is N / this.
    mtbf_per_proc_s: float = PER_PROC_MTBF_S
    # -- parallel overhead T_O(N) ------------------------------------
    #: SpMV halo rounds: coefficient of log2(N), seconds.
    spmv_comm_coeff_s: float = 0.05
    #: Inner-product term, linear in N [40], seconds per process.
    dot_comm_coeff_s: float = 2.0e-5
    # -- per-scheme measured parameters at n0 --------------------------
    #: CR-D per-checkpoint cost at n0 (grows linearly with N).
    t_c_disk_s: float = 0.2
    #: CR-M per-checkpoint cost (constant in N).
    t_c_mem_s: float = 0.02
    #: FW per-fault construction cost at n0 (grows linearly with N).
    t_const_s: float = 0.1
    #: FW per-fault convergence delay, as a fraction of T_solve
    #: (the paper adopts the average normalized overhead).
    extra_fraction: float = 0.04
    #: Idle-core power fractions (Section 6).
    fw_idle_fraction: float = 0.45
    crd_checkpoint_power_fraction: float = 0.40
    crm_checkpoint_power_fraction: float = 0.98

    def __post_init__(self) -> None:
        if self.n0 < 1:
            raise ValueError("reference size must be positive")
        if min(self.t_solve_s, self.p1_w, self.mtbf_per_proc_s) <= 0:
            raise ValueError("times, power and MTBF must be positive")
        if min(self.t_c_disk_s, self.t_c_mem_s, self.t_const_s) <= 0:
            raise ValueError("per-fault costs must be positive")
        if not 0 <= self.extra_fraction < 1:
            raise ValueError("extra fraction must be in [0, 1)")

    # -- scaling laws ----------------------------------------------------
    def rate_per_s(self, n: int) -> float:
        """lambda(N) = N / per-proc MTBF."""
        return n / self.mtbf_per_proc_s

    def system_mtbf_s(self, n: int) -> float:
        return self.mtbf_per_proc_s / n

    def t_overhead_s(self, n: int) -> float:
        """T_O(N): log-rounds SpMV halo + linear inner-product term."""
        if n <= 1:
            return 0.0
        return self.spmv_comm_coeff_s * math.log2(n) + self.dot_comm_coeff_s * n

    def t_c_disk_at(self, n: int) -> float:
        return self.t_c_disk_s * n / self.n0

    def t_const_at(self, n: int) -> float:
        return self.t_const_s * n / self.n0

    def general_model(self, n: int) -> GeneralModel:
        return GeneralModel(
            WorkloadParams(t_solve_s=self.t_solve_s, p1_w=self.p1_w),
            n_cores=n,
            parallel_overhead_s=self.t_overhead_s(n),
        )


@dataclass(frozen=True)
class ProjectionPoint:
    """Normalized overheads of one scheme at one system size."""

    scheme: str
    n: int
    system_mtbf_s: float
    t_res_ratio: float   # T_res / T_ff
    e_res_ratio: float   # E_res / E_ff
    power_ratio: float   # P_avg / (N P_1)

    @property
    def halted(self) -> bool:
        """True when resilience consumes the whole machine — the
        paper's 'workload progress can possibly halt' end-state."""
        return math.isinf(self.t_res_ratio)


def _point(scheme: str, n: int, cfg: ProjectionConfig, t_res, e_res, p_avg) -> ProjectionPoint:
    gm = cfg.general_model(n)
    t_ff = gm.time_fault_free_s()
    e_ff = gm.energy_fault_free_j()
    return ProjectionPoint(
        scheme=scheme,
        n=n,
        system_mtbf_s=cfg.system_mtbf_s(n),
        t_res_ratio=t_res / t_ff,
        e_res_ratio=e_res / e_ff,
        power_ratio=p_avg / gm.power_execution_w(),
    )


def project_scheme(scheme: str, n: int, cfg: ProjectionConfig) -> ProjectionPoint:
    """Project one scheme to system size ``n``.

    Returns a point with infinite ratios (``halted``) when the scheme's
    waste fraction reaches 1 at that size.
    """
    gm = cfg.general_model(n)
    rate = cfg.rate_per_s(n)
    try:
        return _project_scheme_inner(scheme, n, cfg, gm, rate)
    except ProgressHaltError:
        return ProjectionPoint(
            scheme=scheme,
            n=n,
            system_mtbf_s=cfg.system_mtbf_s(n),
            t_res_ratio=math.inf,
            e_res_ratio=math.inf,
            power_ratio=math.nan,
        )


def _project_scheme_inner(
    scheme: str, n: int, cfg: ProjectionConfig, gm: GeneralModel, rate: float
) -> ProjectionPoint:
    if scheme == "RD":
        m = RedundancyModel(gm)
        return _point("RD", n, cfg, m.t_res_s(), m.e_res_j(), m.average_power_w())
    if scheme == "CR-D":
        m = CheckpointModel(
            gm,
            t_c_s=cfg.t_c_disk_at(n),
            rate_per_s=rate,
            checkpoint_power_fraction=cfg.crd_checkpoint_power_fraction,
        )
        return _point("CR-D", n, cfg, m.t_res_s(), m.e_res_j(), m.average_power_w())
    if scheme == "CR-M":
        m = CheckpointModel(
            gm,
            t_c_s=cfg.t_c_mem_s,
            rate_per_s=rate,
            checkpoint_power_fraction=cfg.crm_checkpoint_power_fraction,
        )
        return _point("CR-M", n, cfg, m.t_res_s(), m.e_res_j(), m.average_power_w())
    if scheme == "FW":
        m = ForwardRecoveryModel(
            gm,
            rate_per_s=rate,
            t_const_s=cfg.t_const_at(n),
            t_extra_s=cfg.extra_fraction * cfg.t_solve_s,
            n_active=1,
            idle_power_fraction=cfg.fw_idle_fraction,
        )
        return _point("FW", n, cfg, m.t_res_s(), m.e_res_j(), m.average_power_w())
    raise ValueError(f"unknown scheme {scheme!r}; use RD, CR-D, CR-M or FW")


#: Figure 9's scheme set.
FIGURE9_SCHEMES = ("RD", "CR-D", "CR-M", "FW")


def project(
    sizes: list[int], cfg: ProjectionConfig | None = None, schemes=FIGURE9_SCHEMES
) -> dict[str, list[ProjectionPoint]]:
    """Project every scheme over ``sizes``; Figure 9's data."""
    cfg = cfg or ProjectionConfig()
    if not sizes:
        raise ValueError("need at least one system size")
    if any(s < 1 for s in sizes):
        raise ValueError("system sizes must be positive")
    return {s: [project_scheme(s, n, cfg) for n in sorted(sizes)] for s in schemes}
