"""Model-vs-experiment validation (Table 6).

The paper validates the Section-3 models by feeding them parameters
measured from experiment (per-checkpoint cost ``t_C`` for CR, per-fault
construction time ``t_const`` for FW) and comparing the predicted
``T_res``, average ``P`` and ``E_res`` — all normalized to the
fault-free run — with the measured values.

For FW the model's per-fault *extra* time is an a-priori suite-average
fraction rather than the matrix's own measurement, which is why the
model "over estimates T_res and E_res" for specific matrices exactly as
the paper reports; the point of Table 6 is that the relative ordering
between schemes survives.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import (
    CheckpointModel,
    ForwardRecoveryModel,
    RedundancyModel,
)
from repro.core.report import SolveReport
from repro.power.energy import PhaseTag

#: A-priori per-fault convergence delay for FW, as a fraction of the
#: fault-free time (suite average, the Section-6 parameterization).
DEFAULT_EXTRA_FRACTION_PER_FAULT = 0.06


@dataclass(frozen=True)
class ModelValidation:
    """One Table-6 row: model vs experiment, normalized to fault-free."""

    scheme: str
    model_t_res: float
    model_p: float
    model_e_res: float
    exp_t_res: float
    exp_p: float
    exp_e_res: float

    def as_row(self) -> tuple:
        return (
            self.scheme,
            self.model_t_res,
            self.model_p,
            self.model_e_res,
            self.exp_t_res,
            self.exp_p,
            self.exp_e_res,
        )


def _experiment_ratios(ff: SolveReport, faulty: SolveReport) -> tuple[float, float, float]:
    t = faulty.resilience_time_s / ff.time_s
    p = faulty.average_power_w / ff.average_power_w
    e = faulty.resilience_energy_j / ff.energy_j
    return t, p, e


def _general_model(ff: SolveReport, nranks: int) -> GeneralModel:
    solve_t = ff.account.time(PhaseTag.SOLVE)
    overhead_t = ff.account.time(PhaseTag.OVERHEAD)
    p1 = ff.average_power_w / nranks
    return GeneralModel(
        WorkloadParams(t_solve_s=max(solve_t, 1e-12), p1_w=p1),
        n_cores=nranks,
        parallel_overhead_s=overhead_t,
    )


def validate_scheme(
    ff: SolveReport,
    faulty: SolveReport,
    *,
    nranks: int,
    extra_fraction_per_fault: float = DEFAULT_EXTRA_FRACTION_PER_FAULT,
) -> ModelValidation:
    """Build the Table-6 comparison for one faulty run against its
    fault-free baseline.

    The scheme family is inferred from ``faulty.scheme``; model
    parameters (``t_C``, ``t_const``, intervals, rates) are extracted
    from the faulty report's own measurements, as the paper does.
    """
    if nranks < 1:
        raise ValueError("need at least one rank")
    exp_t, exp_p, exp_e = _experiment_ratios(ff, faulty)
    gm = _general_model(ff, nranks)
    t_ff = gm.time_fault_free_s()
    e_ff = gm.energy_fault_free_j()
    n_faults = max(faulty.n_faults, 1)
    rate = n_faults / max(faulty.time_s, 1e-12)
    name = faulty.scheme

    if name == "FF":
        model_t = model_e = 0.0
        model_p = 1.0
    elif name == "RD":
        m = RedundancyModel(gm)
        model_t = m.t_res_s() / t_ff
        model_e = m.e_res_j() / e_ff
        model_p = m.average_power_w() / gm.power_execution_w()
    elif name.startswith("CR"):
        writes = max(1, int(faulty.details.get("scheme_details", {}).get(
            "checkpoints_written", 1)))
        t_c = faulty.account.time(PhaseTag.CHECKPOINT) / writes
        interval_iters = faulty.details.get("scheme_details", {}).get(
            "interval_iters")
        iter_wall = faulty.details.get("iteration_wall_s", 0.0)
        interval_s = (
            interval_iters * iter_wall
            if interval_iters and iter_wall > 0
            else None
        )
        power_frac = faulty.account.energy(PhaseTag.CHECKPOINT) / max(
            faulty.account.time(PhaseTag.CHECKPOINT), 1e-12
        ) / gm.power_execution_w()
        m = CheckpointModel(
            gm,
            t_c_s=max(t_c, 1e-12),
            rate_per_s=rate,
            interval_s=interval_s,
            checkpoint_power_fraction=min(max(power_frac, 1e-6), 1.0),
        )
        model_t = m.t_res_s() / t_ff
        model_e = m.e_res_j() / e_ff
        model_p = m.average_power_w() / gm.power_execution_w()
    else:
        # Forward recovery (F0/FI/LI/LSI, with or without DVFS).
        t_const = faulty.account.time(PhaseTag.RECONSTRUCT) / n_faults
        recon_t = faulty.account.time(PhaseTag.RECONSTRUCT)
        if recon_t > 0:
            idle_frac = (
                faulty.account.energy(PhaseTag.RECONSTRUCT)
                / recon_t
                / gm.power_execution_w()
            )
        else:
            idle_frac = 1.0
        m = ForwardRecoveryModel(
            gm,
            rate_per_s=rate,
            t_const_s=t_const,
            t_extra_s=extra_fraction_per_fault * t_ff,
            n_active=1,
            idle_power_fraction=min(max(idle_frac, 0.0), 1.0),
        )
        model_t = m.t_res_s() / t_ff
        model_e = m.e_res_j() / e_ff
        model_p = m.average_power_w() / gm.power_execution_w()

    return ModelValidation(
        scheme=name,
        model_t_res=model_t,
        model_p=model_p,
        model_e_res=model_e,
        exp_t_res=exp_t,
        exp_p=exp_p,
        exp_e_res=exp_e,
    )
