"""Generalized time/power/energy models (Section 3.1, Equations 1-8).

The models describe a workload ``w`` solved sequentially and its
fixed-time weak scaling ``w'`` on ``N`` cores: per-process work is
constant, so absent parallel overhead the time is constant while the
power scales with ``N`` (Equations 2 and 4).  Faults at rate ``lambda``
add the resilience term ``T_res`` (Equation 3) and reshape power by
phase (Equation 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class WorkloadParams:
    """Workload w and its single-core execution profile."""

    #: T_1(w): sequential time-to-solution (Eq. 1), seconds.
    t_solve_s: float
    #: P_1(w): single-core power during execution, watts.
    p1_w: float

    def __post_init__(self) -> None:
        if self.t_solve_s <= 0:
            raise ValueError("T_solve must be positive")
        if self.p1_w <= 0:
            raise ValueError("P_1 must be positive")

    @property
    def e1_j(self) -> float:
        """E_1(w) = P_1 * T_1 (Eq. 6)."""
        return self.p1_w * self.t_solve_s


@dataclass(frozen=True)
class GeneralModel:
    """Equations 2-8 for a scaled workload on ``n_cores`` cores.

    ``parallel_overhead_s`` is T_O(N); pass a callable for projections
    where it grows with N (Section 6) or a constant for a fixed machine.
    """

    workload: WorkloadParams
    n_cores: int
    parallel_overhead_s: float | Callable[[int], float] = 0.0

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")

    # ------------------------------------------------------------------
    @property
    def t_overhead_s(self) -> float:
        """T_O(N)."""
        if callable(self.parallel_overhead_s):
            value = self.parallel_overhead_s(self.n_cores)
        else:
            value = self.parallel_overhead_s
        if value < 0:
            raise ValueError("parallel overhead must be non-negative")
        return value

    def time_fault_free_s(self) -> float:
        """T_N(w') = T_solve + T_O(N) (Eq. 2)."""
        return self.workload.t_solve_s + self.t_overhead_s

    def time_s(self, t_res_s: float = 0.0) -> float:
        """T_N(w') = T_solve + T_O(N) + T_res (Eq. 3)."""
        if t_res_s < 0:
            raise ValueError("T_res must be non-negative")
        return self.time_fault_free_s() + t_res_s

    # ------------------------------------------------------------------
    def power_execution_w(self) -> float:
        """P_N(w') = N * P_1(w) during execution phases (Eq. 4/5)."""
        return self.n_cores * self.workload.p1_w

    def power_overlapped_w(self, p_res_w: float) -> float:
        """Execution concurrent with resilience (Eq. 5, third case)."""
        if p_res_w < 0:
            raise ValueError("resilience power must be non-negative")
        return self.power_execution_w() + p_res_w

    # ------------------------------------------------------------------
    def energy_fault_free_j(self) -> float:
        """E_N(w') = N P_1 (T_solve + T_O) (Eq. 7)."""
        return self.power_execution_w() * self.time_fault_free_s()

    def energy_j(self, t_res_s: float, p_avg_w: float) -> float:
        """E_N(w') = P_avg * (T_solve + T_O + T_res) (Eq. 8)."""
        if p_avg_w < 0:
            raise ValueError("average power must be non-negative")
        return p_avg_w * self.time_s(t_res_s)

    def average_power_w(
        self, phases: list[tuple[float, float]]
    ) -> float:
        """Time-weighted average power over ``(duration_s, power_w)``
        phases — how the paper averages P over a whole faulty run."""
        total_t = sum(d for d, _ in phases)
        if total_t <= 0:
            raise ValueError("phases must have positive total duration")
        if any(d < 0 or p < 0 for d, p in phases):
            raise ValueError("durations and powers must be non-negative")
        return sum(d * p for d, p in phases) / total_t
