"""Analytical models (Sections 3 and 6).

* :mod:`repro.core.models.general` — the generalized T/P/E models
  (Equations 1-8) under fixed-time weak scaling;
* :mod:`repro.core.models.schemes` — per-scheme refinements of
  ``T_res`` and ``P_res`` (Equations 9-16);
* :mod:`repro.core.models.projection` — the Section-6 weak-scaling
  projection to large systems (Figure 9);
* :mod:`repro.core.models.validation` — model-vs-measured comparison
  (Table 6).
"""

from repro.core.models.general import GeneralModel, WorkloadParams
from repro.core.models.schemes import (
    CheckpointModel,
    ForwardRecoveryModel,
    RedundancyModel,
)
from repro.core.models.projection import ProjectionConfig, ProjectionPoint, project
from repro.core.models.validation import ModelValidation, validate_scheme

__all__ = [
    "GeneralModel",
    "WorkloadParams",
    "CheckpointModel",
    "ForwardRecoveryModel",
    "RedundancyModel",
    "ProjectionConfig",
    "ProjectionPoint",
    "project",
    "ModelValidation",
    "validate_scheme",
]
