"""Per-scheme resilience cost models (Section 3.2, Equations 9-16).

Each model refines ``T_res(w', N, lambda)`` and ``P_{N,res}`` for one
recovery family.  Failure rate ``lambda`` is per second of execution;
model parameters (``t_C``, ``t_const``, ``t_extra``) are measured from
the simulated cluster exactly as the paper measures them from its
testbed (Table 6's protocol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.checkpoint.interval import young_interval
from repro.core.models.general import GeneralModel


class ProgressHaltError(ValueError):
    """Resilience overhead consumes >= 100% of the machine.

    This is the paper's end-state: "if MTBF continues to decrease,
    workload progress can possibly halt" (Section 6).
    """


def _total_time(t_ff_s: float, waste: float) -> float:
    """Solve T = T_ff + waste * T exactly.

    The paper's T_N appears inside its own resilience terms (Eqs. 10-11,
    14): the overheads are linear in the total time with coefficient
    ``waste`` (the fraction of every second lost to resilience), so the
    closed form is T = T_ff / (1 - waste).  ``waste >= 1`` means the
    machine spends everything on resilience and the run never finishes.
    """
    if t_ff_s <= 0:
        raise ValueError("fault-free time must be positive")
    if waste < 0:
        raise ValueError("waste fraction must be non-negative")
    if waste >= 1.0:
        raise ProgressHaltError(
            f"resilience waste fraction {waste:.3f} >= 1: progress halts"
        )
    return t_ff_s / (1.0 - waste)


@dataclass(frozen=True)
class CheckpointModel:
    """CR (Equations 9-11).

    ``t_c_s`` is the per-checkpoint cost; ``interval_s`` defaults to
    Young's optimum for the given failure rate.
    ``checkpoint_power_fraction`` is P_{N,res} / (N P_1): CPUs are under-
    utilised while writing (Section 3.2).
    """

    model: GeneralModel
    t_c_s: float
    rate_per_s: float
    interval_s: float | None = None
    checkpoint_power_fraction: float = 0.74

    def __post_init__(self) -> None:
        if self.t_c_s <= 0:
            raise ValueError("t_C must be positive")
        if self.rate_per_s < 0:
            raise ValueError("failure rate must be non-negative")
        if self.interval_s is not None and self.interval_s <= 0:
            raise ValueError("interval must be positive")
        if not 0 < self.checkpoint_power_fraction <= 1:
            raise ValueError("checkpoint power fraction must be in (0, 1]")

    @property
    def effective_interval_s(self) -> float:
        if self.interval_s is not None:
            return self.interval_s
        if self.rate_per_s == 0:
            return math.inf
        return young_interval(self.t_c_s, 1.0 / self.rate_per_s)

    # -- Equations 10/11 as functions of the total run time -------------
    def t_chkpt_s(self, t_total_s: float) -> float:
        """T_chkpt = t_C * T_N / I_C (Eq. 10)."""
        i_c = self.effective_interval_s
        if math.isinf(i_c):
            return 0.0
        return self.t_c_s * t_total_s / i_c

    def t_lost_s(self, t_total_s: float) -> float:
        """T_lost ~= (I_C / 2) * lambda * T_N (Eq. 11)."""
        i_c = self.effective_interval_s
        if math.isinf(i_c):
            return 0.0
        return 0.5 * i_c * self.rate_per_s * t_total_s

    def waste_fraction(self) -> float:
        """Fraction of every second lost to checkpoint writes plus
        rollback recomputation: t_C/I_C + I_C lambda / 2."""
        return self.t_chkpt_s(1.0) + self.t_lost_s(1.0)

    def t_res_s(self) -> float:
        """T_res = T_chkpt + T_lost (Eq. 9), resolved at the fixed point
        T = T_ff + T_res (raises ProgressHaltError when waste >= 1)."""
        t_ff = self.model.time_fault_free_s()
        return _total_time(t_ff, self.waste_fraction()) - t_ff

    # -- power / energy --------------------------------------------------
    def p_res_w(self) -> float:
        """Power while checkpointing: below N P_1."""
        return self.checkpoint_power_fraction * self.model.power_execution_w()

    def e_res_j(self) -> float:
        """Checkpoint writes at reduced power; lost recomputation at
        execution power."""
        t_ff = self.model.time_fault_free_s()
        total = t_ff + self.t_res_s()
        return self.t_chkpt_s(total) * self.p_res_w() + self.t_lost_s(
            total
        ) * self.model.power_execution_w()

    def average_power_w(self) -> float:
        t_ff = self.model.time_fault_free_s()
        total = t_ff + self.t_res_s()
        e = self.model.energy_fault_free_j() + self.e_res_j()
        return e / total


@dataclass(frozen=True)
class RedundancyModel:
    """RD/DMR (Equation 12): no time overhead, replicated power
    throughout.  ``replicas=3`` models TMR (3x power)."""

    model: GeneralModel
    replicas: int = 2

    def __post_init__(self) -> None:
        if self.replicas < 2:
            raise ValueError("redundancy needs at least two modular copies")

    def t_res_s(self) -> float:
        return 0.0

    def p_res_w(self) -> float:
        """P_{N,res} = (r-1) N P_1(w) — the replicas' concurrent draw."""
        return (self.replicas - 1) * self.model.power_execution_w()

    def e_res_j(self) -> float:
        """Each replica consumes a full copy of the fault-free energy."""
        return (self.replicas - 1) * self.model.energy_fault_free_j()

    def average_power_w(self) -> float:
        return self.replicas * self.model.power_execution_w()


@dataclass(frozen=True)
class ForwardRecoveryModel:
    """FW (Equations 13-16).

    ``t_const_s`` is the per-fault construction time (0 for F0/FI);
    ``t_extra_s`` the per-fault convergence-delay time;
    ``n_active`` the cores active during construction (1 for the local
    CG constructions of Section 4.1);
    ``idle_power_fraction`` is P_idle / P_1 for the inactive cores
    (0.45 with the DVFS schedule, ~0.74 without — Section 4.2/6).
    """

    model: GeneralModel
    rate_per_s: float
    t_const_s: float
    t_extra_s: float
    n_active: int = 1
    idle_power_fraction: float = 0.45

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("failure rate must be non-negative")
        if self.t_const_s < 0 or self.t_extra_s < 0:
            raise ValueError("per-fault times must be non-negative")
        if not 1 <= self.n_active <= self.model.n_cores:
            raise ValueError("n_active must be within the core count")
        if not 0 <= self.idle_power_fraction <= 1:
            raise ValueError("idle power fraction must be in [0, 1]")

    def waste_fraction(self) -> float:
        """Fraction of every second lost to reconstruction plus
        convergence delay: lambda * (t_const + t_extra)."""
        return self.rate_per_s * (self.t_const_s + self.t_extra_s)

    def t_const_total_s(self) -> float:
        """T_const = lambda * T_N * t_const (Eq. 14), at the fixed point."""
        return self.rate_per_s * self._total() * self.t_const_s

    def t_extra_total_s(self) -> float:
        return self.rate_per_s * self._total() * self.t_extra_s

    def _total(self) -> float:
        t_ff = self.model.time_fault_free_s()
        return _total_time(t_ff, self.waste_fraction())

    def t_res_s(self) -> float:
        """T_res = T_const + T_extra (Eq. 13)."""
        return self.t_const_total_s() + self.t_extra_total_s()

    def p_const_w(self) -> float:
        """P_{N,const} = N~ P_1 + (N - N~) P_idle (Eq. 15)."""
        p1 = self.model.workload.p1_w
        n = self.model.n_cores
        return self.n_active * p1 + (n - self.n_active) * self.idle_power_fraction * p1

    def e_res_j(self) -> float:
        """E_res = P_const T_const + N P_1 T_extra (Eq. 16)."""
        return (
            self.p_const_w() * self.t_const_total_s()
            + self.model.power_execution_w() * self.t_extra_total_s()
        )

    def average_power_w(self) -> float:
        total = self._total()
        e = self.model.energy_fault_free_j() + self.e_res_j()
        return e / total


@dataclass(frozen=True)
class ExactReconstructionModel:
    """ESR (Pachajoa et al., arXiv:1907.13077).

    Redundant copies of the search direction and residual stream to
    neighbour ranks alongside every iteration; after a fault — including
    several simultaneous rank losses — the survivors rebuild the lost
    blocks *exactly* from the redundant recurrence data, so CG continues
    on its fault-free trajectory with no restart and no convergence
    delay:

        T_res = F * (t_xfer + t_rebuild)
        E_res = P_ret * (T_ff + T_res)
                + F * (t_xfer * N P_1 + t_rebuild * P_rebuild)

    ``retention_power_w`` is the concurrent draw of the replica
    streaming (overlapped like RD's replicas, but a small fraction of a
    full copy); ``t_xfer_s`` / ``t_rebuild_s`` are the per-fault
    transfer and recurrence-rebuild times summed over that fault's
    victim set.
    """

    model: GeneralModel
    retention_power_w: float
    t_xfer_s: float
    t_rebuild_s: float
    n_faults: int
    rebuild_power_w: float

    def __post_init__(self) -> None:
        if self.retention_power_w < 0:
            raise ValueError("retention power must be non-negative")
        if self.t_xfer_s < 0 or self.t_rebuild_s < 0:
            raise ValueError("per-fault times must be non-negative")
        if self.n_faults < 0:
            raise ValueError("fault count must be non-negative")
        if self.rebuild_power_w < 0:
            raise ValueError("rebuild power must be non-negative")

    def t_res_s(self) -> float:
        """Transfer plus rebuild; no rollback, no extra iterations."""
        return self.n_faults * (self.t_xfer_s + self.t_rebuild_s)

    def e_retention_j(self) -> float:
        """The overlapped streaming of redundant p/r copies."""
        return self.retention_power_w * (
            self.model.time_fault_free_s() + self.t_res_s()
        )

    def e_res_j(self) -> float:
        return self.e_retention_j() + self.n_faults * (
            self.t_xfer_s * self.model.power_execution_w()
            + self.t_rebuild_s * self.rebuild_power_w
        )

    def average_power_w(self) -> float:
        total = self.model.time_fault_free_s() + self.t_res_s()
        e = self.model.energy_fault_free_j() + self.e_res_j()
        return e / total


@dataclass(frozen=True)
class ABCRModel:
    """ABCR (Pachajoa & Levonyak, arXiv:2007.04066).

    Algorithm-based checkpoint-recovery: the Krylov recurrence vectors
    are retained in neighbour-rank memory every interval; on a fault the
    iterate rolls back to the last retained copy and the recurrence
    vectors are *reconstructed* in place of any disk read.  Timing is
    checkpoint-family (Eqs. 9-11) with the write/read cost being the
    neighbour transfer, plus a per-fault recurrence rebuild:

        T_res = T_chkpt + T_lost + F * t_rebuild
        E_res = E_chkpt/lost + F * t_rebuild * P_rebuild
    """

    checkpoint: CheckpointModel
    t_rebuild_s: float
    n_faults: int
    rebuild_power_w: float

    def __post_init__(self) -> None:
        if self.t_rebuild_s < 0:
            raise ValueError("rebuild time must be non-negative")
        if self.n_faults < 0:
            raise ValueError("fault count must be non-negative")
        if self.rebuild_power_w < 0:
            raise ValueError("rebuild power must be non-negative")

    def t_rebuild_total_s(self) -> float:
        return self.n_faults * self.t_rebuild_s

    def t_res_s(self) -> float:
        return self.checkpoint.t_res_s() + self.t_rebuild_total_s()

    def e_res_j(self) -> float:
        return (
            self.checkpoint.e_res_j()
            + self.t_rebuild_total_s() * self.rebuild_power_w
        )

    def average_power_w(self) -> float:
        t_ff = self.checkpoint.model.time_fault_free_s()
        total = t_ff + self.t_res_s()
        e = self.checkpoint.model.energy_fault_free_j() + self.e_res_j()
        return e / total
