"""Core: the paper's contribution.

Distributed CG with pluggable fault-recovery schemes
(:mod:`repro.core.recovery`), a resilient solver that wires the cluster,
power, fault and checkpoint substrates together
(:mod:`repro.core.solver`), and the Section-3 analytical models
(:mod:`repro.core.models`).
"""

from repro.core.advisor import Objective, SchemeAdvisor, SchemeEstimate, Situation
from repro.core.cg import CGState, DistributedCG, IterationCosts
from repro.core.errors import ConvergenceError
from repro.core.report import SolveReport
from repro.core.solver import ResilientSolver, SolverConfig

__all__ = [
    "CGState",
    "ConvergenceError",
    "DistributedCG",
    "IterationCosts",
    "SolveReport",
    "ResilientSolver",
    "SolverConfig",
    "Objective",
    "SchemeAdvisor",
    "SchemeEstimate",
    "Situation",
]
