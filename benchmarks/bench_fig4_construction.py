"""Figure 4: time-to-solution with the CG-based construction algorithm
for LI and LSI on matrix Kuu with 5 faults.

Sweeps the local-construction tolerance and compares against the exact
baselines (LU-based LI, parallel exact least-squares standing in for the
QR-based LSI of [2]).  The paper's claim: the CG-based constructions
reduce the recovery time — "by computing a less accurate approximation,
CG-based LI and LSI require less recovery time and total time", with a
4-15% total improvement depending on tolerance.

The deterministic half of that claim (construction/recovery time) is
asserted at every tolerance; the total time-to-solution — which also
contains the stochastic convergence-delay term — is reported in the
table and asserted loosely (the CG variants never lose badly and win at
their best tolerance).
"""

from repro.harness.experiment import Experiment, ExperimentConfig
from repro.harness.reporting import format_table
from repro.power.energy import PhaseTag

from benchmarks.common import emit

TOLERANCES = [1e-2, 1e-4, 1e-6, 1e-8]
NRANKS = 16
N_FAULTS = 5
SCALE = 2.0  # Kuu stand-in at n ~ 1320 so victim blocks are sizeable


def recon_time(rep) -> float:
    return rep.account.time(PhaseTag.RECONSTRUCT)


def figure4_data():
    base = ExperimentConfig(
        matrix="Kuu", nranks=NRANKS, n_faults=N_FAULTS, scale=SCALE
    )
    exp = Experiment(base)
    baselines = {name: exp.run(name) for name in ("LI-LU", "LSI-QR")}
    rows = []
    for tol in TOLERANCES:
        e = Experiment(
            ExperimentConfig(
                matrix="Kuu",
                nranks=NRANKS,
                n_faults=N_FAULTS,
                scale=SCALE,
                construct_tol=tol,
            )
        )
        rows.append((tol, e.run("LI"), e.run("LSI")))
    return exp.fault_free, baselines, rows


def test_figure4_construction(benchmark):
    ff, baselines, rows = benchmark.pedantic(figure4_data, rounds=1, iterations=1)
    lu, qr = baselines["LI-LU"], baselines["LSI-QR"]
    table = [
        [
            f"{tol:.0e}",
            recon_time(li) / recon_time(lu),
            li.time_s / lu.time_s,
            recon_time(lsi) / recon_time(qr),
            lsi.time_s / qr.time_s,
        ]
        for tol, li, lsi in rows
    ]
    text = format_table(
        [
            "construct tol",
            "LI recov T vs LU",
            "LI total T vs LU",
            "LSI recov T vs QR",
            "LSI total T vs QR",
        ],
        table,
        title=(
            "Figure 4 — CG-based vs exact construction, Kuu-class, "
            f"{N_FAULTS} faults (ratios < 1: the CG construction wins; "
            f"FF baseline: {ff.iterations} iterations)"
        ),
        precision=3,
    )
    emit("fig4_construction", text)

    for tol, li, lsi in rows:
        assert li.converged and lsi.converged
        # the optimized construction is cheaper at every tolerance
        assert recon_time(li) < recon_time(lu), f"LI recovery @{tol}"
        assert recon_time(lsi) < recon_time(qr), f"LSI recovery @{tol}"
        # and total time never degrades badly
        assert li.time_s < 1.25 * lu.time_s
        assert lsi.time_s < 1.25 * qr.time_s
    # at its best tolerance each CG variant also wins on total time
    assert min(li.time_s for _, li, _ in rows) < lu.time_s
    assert min(lsi.time_s for _, _, lsi in rows) < qr.time_s
    # looser tolerance -> cheaper construction (the Figure-4 x-axis trend)
    li_recovs = [recon_time(li) for _, li, _ in rows]
    assert li_recovs[0] <= li_recovs[-1]
