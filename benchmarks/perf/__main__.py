"""CLI for the perf-regression harness.

Measure and record a baseline::

    python -m benchmarks.perf --suite smoke --output BENCH_perf.json

Gate the working tree against a committed baseline (exit 1 on any
normalized-score regression beyond the tolerance)::

    python -m benchmarks.perf --suite smoke --compare BENCH_perf.json
"""

from __future__ import annotations

import argparse
import sys

from benchmarks.perf import runner


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="benchmarks.perf", description=__doc__)
    parser.add_argument("--suite", default="smoke", choices=runner.suite_names())
    parser.add_argument(
        "--repeats", type=int, default=runner.DEFAULT_REPEATS,
        help="timed repetitions per benchmark; the median is reported",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the results document as JSON",
    )
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="gate this run against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="relative normalized-score growth that counts as a "
        "regression (default 0.25)",
    )
    args = parser.parse_args(argv)

    doc = runner.run_suite(
        args.suite,
        repeats=args.repeats,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    print(runner.format_results(doc))
    if args.output:
        runner.save(args.output, doc)
        print(f"wrote {args.output}")
    if args.compare:
        cmp = runner.compare(doc, runner.load(args.compare), args.tolerance)
        print()
        print(runner.format_comparison(cmp))
        return 1 if cmp["regressions"] else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
