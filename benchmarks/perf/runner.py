"""Measurement protocol for the perf-regression harness.

Every benchmark is median-of-N wall seconds of one operation, with the
setup (matrix generation, RHS, schedules) excluded from the timed
region.  Raw seconds are useless as a regression gate — CI runners and
laptops differ by multiples — so each benchmark is also reported as a
**normalized score**: its median divided by the median of a fixed
reference kernel measured in the same process moments earlier.  The
references bracket the two cost classes the solver mixes:

* ``matvec`` — SpMV throughput (numpy/scipy kernel speed);
* ``pyloop`` — interpreter throughput (per-iteration bookkeeping).

A benchmark normalizes against whichever class dominates it, so a score
is approximately "how many reference-kernel units does this op cost" —
a machine-independent quantity whose drift measures *our* code, not the
hardware.  :func:`compare` gates on those scores: a benchmark regresses
when its score grows more than ``tolerance`` (default 25%) over the
committed baseline (``BENCH_perf.json``).

The ``smoke`` suite covers the stencil problem class only and is sized
for CI (seconds, not minutes); ``full`` adds the banded and irregular
classes plus the legacy engine for a visible fast/legacy ratio.
"""

from __future__ import annotations

import json
import statistics
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

SCHEMA_VERSION = 1

#: Timed repetitions per benchmark (median taken).
DEFAULT_REPEATS = 5


# ----------------------------------------------------------------------
# reference kernels
# ----------------------------------------------------------------------
def _ref_matvec_once() -> float:
    from repro.matrices.generators import stencil_5pt

    a = stencil_5pt(60)  # 3600 rows, fixed forever: the unit of SpMV work
    x = np.linspace(0.0, 1.0, a.shape[0])
    t0 = time.perf_counter()
    for _ in range(200):
        x = a @ x
    return time.perf_counter() - t0


def _ref_pyloop_once() -> float:
    t0 = time.perf_counter()
    acc = 0.0
    for i in range(100_000):  # fixed forever: the unit of interpreter work
        acc += i * 1e-9
        if acc > 1e12:  # never taken; keeps the loop body honest
            break
    return time.perf_counter() - t0


def calibrate(repeats: int = DEFAULT_REPEATS) -> dict[str, float]:
    """Median seconds of each reference kernel on this machine."""
    return {
        "matvec_s": statistics.median(_ref_matvec_once() for _ in range(repeats)),
        "pyloop_s": statistics.median(_ref_pyloop_once() for _ in range(repeats)),
    }


# ----------------------------------------------------------------------
# benchmarks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchSpec:
    """One microbenchmark: ``setup()`` once, time ``op(state)`` N times."""

    name: str
    ref: str                      # "matvec" | "pyloop"
    setup: Callable[[], object]
    op: Callable[[object], None]
    suites: tuple[str, ...] = ("smoke", "full")
    #: ops per timed call; reported times are per-op.  Raise it for
    #: microsecond-scale ops so the timer and GC noise amortize away.
    batch: int = 1


def _solve_inputs(matrix: str, scale: float, nranks: int):
    """(a, b) for a suite matrix — built outside the timed region."""
    from repro.matrices import suite

    a = suite.build(matrix, scale)
    rng = np.random.default_rng(7)
    b = a @ rng.standard_normal(a.shape[0])
    return a, b, nranks


def _run_solver(state, *, scheme=None, n_faults=0, fast=True, trace=False,
                backend=None, victims_per_fault=1):
    from repro.core.backends import DEFAULT_BACKEND
    from repro.core.recovery import make_scheme
    from repro.core.solver import ResilientSolver, SolverConfig
    from repro.faults.schedule import EvenlySpacedSchedule

    a, b, nranks = state
    solver = ResilientSolver(
        a,
        b,
        scheme=make_scheme(scheme, interval_iters=40) if scheme else None,
        schedule=EvenlySpacedSchedule(
            n_faults=n_faults, victims_per_fault=victims_per_fault
        ) if n_faults else None,
        config=SolverConfig(
            nranks=nranks, tol=1e-8, fast=fast, trace=trace,
            backend=backend or DEFAULT_BACKEND,
        ),
    )
    report = solver.solve()
    assert report.converged, "benchmark problem must converge"


def _setup_cold(state) -> None:
    """Full problem setup with every cache bypassed."""
    from repro.cluster.comm import SimComm
    from repro.core.cg import IterationCosts
    from repro.core.solver import SolverConfig
    from repro.matrices import suite
    from repro.matrices.distributed import DistributedMatrix
    from repro.matrices.partition import BlockRowPartition

    matrix, scale, nranks = state
    a = suite.build(matrix, scale, cache=False)
    dmat = DistributedMatrix(a, BlockRowPartition(a.shape[0], nranks)).warm()
    cfg = SolverConfig(nranks=nranks)
    IterationCosts.measure(dmat, SimComm(cfg.machine, nranks, cfg.network),
                           preconditioned=False)


def _analytic_experiment(matrix: str, scale: float, nranks: int, n_faults: int):
    """A primed analytic-engine experiment: the FF horizon (the one real
    solve the model needs) is computed here, outside the timed region,
    so the timed op is the pure closed-form scheme evaluation."""
    from repro.harness.experiment import Experiment, ExperimentConfig

    exp = Experiment(
        ExperimentConfig(
            matrix=matrix, nranks=nranks, n_faults=n_faults,
            scale=scale, engine="analytic",
        )
    )
    exp.fault_free
    return exp


def _run_analytic(exp, scheme: str) -> None:
    report = exp.engine.solve_scheme(exp, scheme, exp.fault_free)
    assert report.converged, "analytic model must report convergence"


BENCHMARKS: list[BenchSpec] = [
    BenchSpec(
        "setup_cold.stencil", "matvec",
        setup=lambda: ("stencil5", 0.36, 16),
        op=_setup_cold,
    ),
    BenchSpec(
        "solve_ff.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s),
    ),
    BenchSpec(
        "solve_faulty_li.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s, scheme="LI", n_faults=3),
    ),
    BenchSpec(
        "solve_faulty_cr.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s, scheme="CR-M", n_faults=3),
    ),
    BenchSpec(
        "solve_traced_li.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s, scheme="LI", n_faults=3, trace=True),
    ),
    # the victim-set fault path: three two-rank simultaneous losses
    # recovered by exact state reconstruction (no restart, so the cost
    # is pure per-victim rebuild work — the multi-fault hot path)
    BenchSpec(
        "solve_esr_multifault.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(
            s, scheme="ESR", n_faults=3, victims_per_fault=2
        ),
    ),
    BenchSpec(
        "model_faulty_li.stencil", "pyloop",
        setup=lambda: _analytic_experiment("stencil5", 0.36, 16, 3),
        op=lambda s: _run_analytic(s, "LI"),
        batch=25,
    ),
    # the two sides of backend_speedup(): the same fault-free solve on
    # the vectorized default backend and the rank-by-rank reference.
    # 32 ranks (vs the other benches' 16) because the loop backend's
    # per-rank overhead is what the readout measures — at 16 ranks the
    # ratio sits too close to the CI gate's 5x floor to be a stable gate
    BenchSpec(
        "solve_batched_ff.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 32),
        op=lambda s: _run_solver(s, backend="batched"),
    ),
    BenchSpec(
        "solve_loop_ff.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 32),
        op=lambda s: _run_solver(s, backend="loop"),
    ),
    # full-suite extras: the other matrix classes + the legacy engine
    BenchSpec(
        "solve_ff.banded", "pyloop",
        setup=lambda: _solve_inputs("Kuu", 0.5, 16),
        op=lambda s: _run_solver(s),
        suites=("full",),
    ),
    BenchSpec(
        "solve_faulty_lsi.irregular", "pyloop",
        setup=lambda: _solve_inputs("ex15", 0.4, 16),
        op=lambda s: _run_solver(s, scheme="LSI", n_faults=3),
        suites=("full",),
    ),
    BenchSpec(
        "solve_ff_legacy.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s, fast=False),
        suites=("full",),
    ),
    BenchSpec(
        "solve_loop_faulty_li.stencil", "pyloop",
        setup=lambda: _solve_inputs("stencil5", 0.36, 16),
        op=lambda s: _run_solver(s, scheme="LI", n_faults=3, backend="loop"),
        suites=("full",),
    ),
]


def suite_names() -> list[str]:
    return ["smoke", "full"]


def run_suite(
    suite: str = "smoke",
    repeats: int = DEFAULT_REPEATS,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run one suite; returns the JSON-ready results document."""
    if suite not in suite_names():
        raise ValueError(f"unknown suite {suite!r}; known: {suite_names()}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    calibration = calibrate(repeats)
    results: dict[str, dict] = {}
    for spec in BENCHMARKS:
        if suite not in spec.suites:
            continue
        if progress is not None:
            progress(spec.name)
        state = spec.setup()
        spec.op(state)  # warm-up: JIT-free, but primes caches and imports
        runs = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            for _ in range(spec.batch):
                spec.op(state)
            runs.append((time.perf_counter() - t0) / spec.batch)
        median = statistics.median(runs)
        ref_s = calibration[f"{spec.ref}_s"]
        results[spec.name] = {
            "median_s": median,
            "normalized": median / ref_s,
            "ref": spec.ref,
            "runs_s": runs,
        }
    return {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "repeats": repeats,
        "calibration": calibration,
        "benchmarks": results,
    }


def model_speedup(doc: dict) -> float | None:
    """Wall-clock ratio of the simulated faulty LI solve to the analytic
    model of the same cell — the headline "why two engines" number.
    ``None`` when the suite did not run both sides."""
    bench = doc["benchmarks"]
    try:
        sim_s = bench["solve_faulty_li.stencil"]["median_s"]
        model_s = bench["model_faulty_li.stencil"]["median_s"]
    except KeyError:
        return None
    return sim_s / model_s if model_s > 0 else float("inf")


def backend_speedup(doc: dict) -> float | None:
    """Wall-clock ratio of the ``loop`` backend to the ``batched``
    backend on the same fault-free solve — what vectorizing across
    ranks buys (the CI gate asserts >= 5x).  ``None`` when the suite
    did not run both backends."""
    bench = doc["benchmarks"]
    try:
        loop_s = bench["solve_loop_ff.stencil"]["median_s"]
        batched_s = bench["solve_batched_ff.stencil"]["median_s"]
    except KeyError:
        return None
    return loop_s / batched_s if batched_s > 0 else float("inf")


# ----------------------------------------------------------------------
# comparison gate
# ----------------------------------------------------------------------
def compare(current: dict, baseline: dict, tolerance: float = 0.25) -> dict:
    """Gate ``current`` against ``baseline`` on normalized scores.

    Returns ``{"rows": [...], "regressions": [names]}``; a benchmark
    regresses when its score exceeds the baseline's by more than
    ``tolerance`` (relative).  Benchmarks present on only one side are
    reported but never fail the gate (suites evolve).
    """
    rows = []
    regressions = []
    cur, base = current["benchmarks"], baseline["benchmarks"]
    for name in sorted(set(cur) | set(base)):
        if name not in cur:
            rows.append({"name": name, "status": "removed"})
            continue
        if name not in base:
            rows.append({"name": name, "status": "new",
                         "normalized": cur[name]["normalized"]})
            continue
        b, c = base[name]["normalized"], cur[name]["normalized"]
        ratio = c / b if b > 0 else float("inf")
        status = "ok"
        if ratio > 1.0 + tolerance:
            status = "regression"
            regressions.append(name)
        elif ratio < 1.0 - tolerance:
            status = "improved"
        rows.append({
            "name": name, "status": status, "baseline": b,
            "normalized": c, "ratio": ratio,
        })
    return {"rows": rows, "regressions": regressions, "tolerance": tolerance}


# ----------------------------------------------------------------------
# formatting / IO
# ----------------------------------------------------------------------
def format_results(doc: dict) -> str:
    lines = [
        f"perf suite '{doc['suite']}' (median of {doc['repeats']}; "
        f"refs: matvec {doc['calibration']['matvec_s'] * 1e3:.1f}ms, "
        f"pyloop {doc['calibration']['pyloop_s'] * 1e3:.1f}ms)",
        f"{'benchmark':<28} {'median':>9} {'score':>9}  ref",
    ]
    for name, r in doc["benchmarks"].items():
        lines.append(
            f"{name:<28} {r['median_s'] * 1e3:>7.1f}ms {r['normalized']:>9.2f}"
            f"  {r['ref']}"
        )
    speedup = model_speedup(doc)
    if speedup is not None:
        lines.append(
            f"analytic model speedup: {speedup:.0f}x vs the simulated "
            "faulty LI solve of the same cell"
        )
    b_speedup = backend_speedup(doc)
    if b_speedup is not None:
        lines.append(
            f"backend speedup: {b_speedup:.1f}x batched over the "
            "rank-by-rank loop on the fault-free solve"
        )
    return "\n".join(lines)


def format_comparison(cmp: dict) -> str:
    lines = [
        f"perf gate (tolerance {cmp['tolerance']:.0%} on normalized scores)",
        f"{'benchmark':<28} {'base':>9} {'now':>9} {'ratio':>7}  status",
    ]
    for row in cmp["rows"]:
        if row["status"] in ("new", "removed"):
            score = row.get("normalized")
            lines.append(
                f"{row['name']:<28} {'-':>9} "
                f"{(f'{score:.2f}' if score is not None else '-'):>9} {'-':>7}"
                f"  {row['status']}"
            )
            continue
        lines.append(
            f"{row['name']:<28} {row['baseline']:>9.2f} {row['normalized']:>9.2f}"
            f" {row['ratio']:>6.2f}x  {row['status']}"
        )
    if cmp["regressions"]:
        lines.append(f"FAILED: {len(cmp['regressions'])} regression(s): "
                     + ", ".join(cmp["regressions"]))
    else:
        lines.append("PASSED: no regressions")
    return "\n".join(lines)


def load(path) -> dict:
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema {doc.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return doc


def save(path, doc: dict) -> None:
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
