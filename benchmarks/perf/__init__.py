"""Perf-regression harness for the solve engine.

Microbenchmarks over the problem-setup and solve paths, reported as
machine-normalized scores so results compare across laptops and CI
runners.  See :mod:`benchmarks.perf.runner` for the measurement
protocol and ``python -m benchmarks.perf --help`` for the CLI.
"""

from benchmarks.perf.runner import (  # noqa: F401
    BenchSpec,
    backend_speedup,
    calibrate,
    compare,
    format_comparison,
    format_results,
    model_speedup,
    run_suite,
    suite_names,
)
