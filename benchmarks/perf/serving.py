"""Serving-tier benchmark: req/s and p50/p99 latency.

Stands a real ``repro.serve`` server up in-process (ephemeral port,
temp store) and measures three request classes with the threaded load
generator::

    healthz     GET /healthz — the HTTP routing floor
    solve_hot   one analytic cell requested repeatedly — the LRU-hit
                path the "many users, same question" workload exercises
    solve_mix   a cycle over distinct cells (different seeds) — first
                pass computes through the micro-batcher, later passes
                hit the LRU

Results are recorded to ``BENCH_serving.json`` next to
``BENCH_perf.json``: raw req/s and millisecond percentiles per phase
plus the server's own cache counters, so the serving trajectory is
committed alongside the solver perf trajectory.  Unlike the solver
suite there is no normalized-score gate — wall-latency on shared CI
runners is too noisy to gate on — but the CI smoke job publishes the
document as an artifact on every run.

Run it::

    PYTHONPATH=src:. python -m benchmarks.perf.serving \
        --requests 400 --concurrency 4 --output BENCH_serving.json
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

SCHEMA_VERSION = 1

#: The benchmark cell: small enough to solve in milliseconds, real
#: enough to exercise the full engine + store + serialization path.
BASE_REQUEST = {
    "matrix": "wathen100",
    "nranks": 8,
    "n_faults": 2,
    "scale": 0.25,
    "engine": "analytic",
}

#: Schemes cycled by the mixed phase (with varying seeds).
MIX_SCHEMES = ("RD", "F0", "LI", "CR-D")
MIX_SEEDS = (0, 1)


def run_serving_bench(
    n_requests: int = 400, concurrency: int = 4, workers: int = 2
) -> dict:
    """Measure one server; returns the JSON-ready results document."""
    from repro.campaign.store import ResultStore
    from repro.serve import BackgroundServer, ServeApp, ServeClient, ServingCore
    from repro.serve.loadgen import run_load

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        store = ResultStore(tmp)
        core = ServingCore(store, workers=workers)
        app = ServeApp(core)
        phases: dict[str, dict] = {}
        with BackgroundServer(app.handle) as server:
            with ServeClient(server.host, server.port) as warm:
                warm.solve(**BASE_REQUEST, scheme="RD")

            phases["healthz"] = run_load(
                server.host,
                server.port,
                lambda client, i: client.health(),
                n_requests=n_requests,
                concurrency=concurrency,
            ).to_dict()

            phases["solve_hot"] = run_load(
                server.host,
                server.port,
                lambda client, i: client.solve(**BASE_REQUEST, scheme="RD"),
                n_requests=n_requests,
                concurrency=concurrency,
            ).to_dict()

            mix = [
                dict(BASE_REQUEST, scheme=scheme, seed=seed)
                for seed in MIX_SEEDS
                for scheme in MIX_SCHEMES
            ]
            phases["solve_mix"] = run_load(
                server.host,
                server.port,
                lambda client, i: client.solve(**mix[i % len(mix)]),
                n_requests=n_requests,
                concurrency=concurrency,
            ).to_dict()

            cache = core.cache_stats()
            store_stats = store.stats()
        core.close()
        store.close()

    solved = cache["solved_by_source"]
    if not solved.get("lru"):
        raise RuntimeError(
            f"hot phase never hit the LRU: {solved}; the serving cache is broken"
        )
    total_errors = sum(p["errors"] for p in phases.values())
    if total_errors:
        raise RuntimeError(f"{total_errors} failed requests during the benchmark")
    store_stats.pop("root", None)  # temp path: meaningless in a committed doc
    return {
        "schema": SCHEMA_VERSION,
        "n_requests": n_requests,
        "concurrency": concurrency,
        "workers": workers,
        "phases": phases,
        "cache": cache,
        "store": store_stats,
    }


def format_results(doc: dict) -> str:
    lines = [
        f"serving benchmark ({doc['n_requests']} requests/phase, "
        f"{doc['concurrency']} client threads, {doc['workers']} server workers)",
        f"{'phase':<12} {'req/s':>8} {'p50_ms':>8} {'p90_ms':>8} {'p99_ms':>8} {'max_ms':>8}",
    ]
    for name, p in doc["phases"].items():
        lines.append(
            f"{name:<12} {p['req_per_s']:>8.0f} {p['p50_ms']:>8.2f} "
            f"{p['p90_ms']:>8.2f} {p['p99_ms']:>8.2f} {p['max_ms']:>8.2f}"
        )
    solved = doc["cache"]["solved_by_source"]
    lines.append(
        "cache: "
        + ", ".join(f"{k}={v}" for k, v in sorted(solved.items()))
        + f" (lru {doc['cache']['lru_entries']}/{doc['cache']['lru_capacity']})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.serving", description=__doc__
    )
    parser.add_argument(
        "--requests", type=int, default=400,
        help="requests per phase (default 400)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4,
        help="client threads (default 4)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="server worker threads (default 2)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the results document as JSON",
    )
    args = parser.parse_args(argv)
    doc = run_serving_bench(
        n_requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
    )
    print(format_results(doc))
    if args.output:
        with open(args.output, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
