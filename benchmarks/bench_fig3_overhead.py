"""Figure 3: accuracy and cost of different recovery mechanisms.

The motivating experiment: the Andrews-class matrix under the cost
protocol (Young CR cadence, CR to disk), comparing fault-free execution
against RD, CR-D and the best forward-recovery scheme.  The paper's
observations to reproduce in shape:

* every mechanism reaches the fault-free accuracy;
* each incurs significant time and/or energy overhead (up to ~2x);
* FW consumes the least extra energy of the recovery mechanisms;
* RD adds no time but doubles energy.
"""

from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table

from benchmarks.common import COST_STUDY_RANKS, emit, experiment, run

SCHEMES = ["RD", "CR-D", "LI-DVFS"]


def figure3_data():
    exp = experiment("Andrews", nranks=COST_STUDY_RANKS, cr_interval="young")
    reports = {"FF": exp.fault_free}
    for s in SCHEMES:
        reports[s] = run(exp, s)
    return reports


def test_figure3_overhead(benchmark):
    reports = benchmark.pedantic(figure3_data, rounds=1, iterations=1)
    norm = normalize_reports(reports)
    rows = [
        [
            name,
            rep.final_relative_residual,
            norm[name].time,
            norm[name].energy,
            norm[name].power,
        ]
        for name, rep in reports.items()
    ]
    text = format_table(
        ["scheme", "final relres", "T (norm)", "E (norm)", "P (norm)"],
        rows,
        title="Figure 3 — accuracy and cost of recovery mechanisms (Andrews-class)",
        precision=3,
    )
    emit("fig3_overhead", text)

    # shape checks: every mechanism reaches the target accuracy
    for name, rep in reports.items():
        assert rep.converged, name
        assert rep.final_relative_residual <= 1e-8
    assert norm["RD"].time < 1.05          # RD: no time overhead
    assert norm["RD"].energy > 1.9          # ... but ~2x energy
    fw_extra = norm["LI-DVFS"].energy - 1.0
    assert fw_extra < norm["RD"].energy - 1.0
    assert fw_extra < norm["CR-D"].energy - 1.0  # FW least extra energy
