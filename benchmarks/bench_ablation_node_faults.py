"""Ablation/extension: fault blast radius (process vs node vs system).

The paper's experiments confine each fault to a single process's data
(Figure 2b) even for node-failure classes.  This ablation widens the
blast radius: an SNF takes out every rank bound to the victim's node,
an SWO takes the whole machine.  Expected shape:

* checkpoint rollback is invariant to the radius (it restores the whole
  state anyway) — losing a node costs the same as losing a process;
* forward recovery degrades with the radius (each block is rebuilt from
  surviving neighbours, and wide damage leaves fewer survivors), yet
  still converges even for a full-system outage;
* redundancy stays exact at every radius.

This quantifies the paper's implicit claim that its single-process
protocol is the *favourable* case for forward recovery.
"""

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.events import FaultScope
from repro.faults.schedule import EvenlySpacedSchedule
from repro.harness.reporting import format_table

from benchmarks.common import emit, experiment

MATRIX = "crystm02"
NRANKS = 48  # two nodes' worth of ranks on the paper machine
SCHEMES = ["RD", "F0", "LI", "CR-D"]
N_FAULTS = 5


def ablation_data():
    exp = experiment(MATRIX, nranks=NRANKS, n_faults=0)
    ff = exp.fault_free
    out = {}
    for scope in (FaultScope.PROCESS, FaultScope.NODE, FaultScope.SYSTEM):
        reports = {}
        for s in SCHEMES:
            reports[s] = ResilientSolver(
                exp.a,
                exp.b,
                scheme=make_scheme(s, interval_iters=100),
                schedule=EvenlySpacedSchedule(n_faults=N_FAULTS, scope=scope),
                config=SolverConfig(nranks=NRANKS, baseline_iters=ff.iterations),
            ).solve()
        out[scope] = reports
    return ff, out


def test_blast_radius_ablation(benchmark):
    ff, data = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = []
    for scope, reports in data.items():
        for s in SCHEMES:
            rep = reports[s]
            rows.append(
                [scope.value, s, rep.normalized_iterations(ff), rep.converged]
            )
    text = format_table(
        ["scope", "scheme", "iters (norm)", "converged"],
        rows,
        title=(
            f"Ablation — fault blast radius on {MATRIX} "
            f"({NRANKS} ranks, {N_FAULTS} faults, FF=1)"
        ),
        precision=2,
    )
    emit("ablation_node_faults", text)

    for scope, reports in data.items():
        for s in SCHEMES:
            assert reports[s].converged, (scope, s)
        # RD is exact at every radius
        assert reports["RD"].iterations == ff.iterations
    # CR's rollback cost is radius-invariant
    crd = {scope: reports["CR-D"].iterations for scope, reports in data.items()}
    assert len(set(crd.values())) == 1
    # forward recovery degrades monotonically-ish with the radius
    li = {scope: reports["LI"].iterations for scope, reports in data.items()}
    assert li[FaultScope.SYSTEM] >= li[FaultScope.PROCESS]
    f0 = {scope: reports["F0"].iterations for scope, reports in data.items()}
    assert f0[FaultScope.SYSTEM] >= f0[FaultScope.PROCESS]
