"""Figure 5: iterations to convergence for all 14 matrices, 256
processes, 10 faults, normalized per matrix to the fault-free run.

Shape to reproduce: F0/FI need the most iterations on average, RD the
fewest (none), LI/LSI beat F0/FI by leveraging intermediate results, CR
sits between; per-matrix behaviour varies (for bcsstk06-class matrices
LI performs similar to F0).
"""

from repro.harness.experiment import ITERATION_STUDY_SCHEMES
from repro.harness.normalize import normalize_reports, suite_average
from repro.harness.reporting import format_table
from repro.matrices import suite

from benchmarks.common import ITERATION_STUDY_RANKS, emit, experiment, run

SCHEMES = ITERATION_STUDY_SCHEMES  # RD F0 FI LI LSI CR-D


def figure5_data():
    per_matrix = {}
    for name in suite.names():
        exp = experiment(name, nranks=ITERATION_STUDY_RANKS, n_faults=10)
        reports = {"FF": exp.fault_free}
        for s in SCHEMES:
            reports[s] = run(exp, s)
        per_matrix[name] = normalize_reports(reports)
    return per_matrix


def test_figure5_iterations(benchmark):
    per_matrix = benchmark.pedantic(figure5_data, rounds=1, iterations=1)
    rows = [
        [name, *(per_matrix[name][s].iterations for s in SCHEMES)]
        for name in suite.names()
    ]
    avg = ["AVG", *(suite_average(per_matrix, s)["iterations"] for s in SCHEMES)]
    text = format_table(
        ["matrix", *SCHEMES],
        rows + [avg],
        title=(
            "Figure 5 — normalized iterations to convergence "
            f"({ITERATION_STUDY_RANKS} processes, 10 faults, per-matrix FF base)"
        ),
        precision=2,
    )
    emit("fig5_matrices", text)

    averages = {s: suite_average(per_matrix, s)["iterations"] for s in SCHEMES}
    # RD takes the fewest iterations (none extra).
    assert averages["RD"] < 1.01
    # F0/FI take the most on average.
    for s in ("RD", "LI", "LSI", "CR-D"):
        assert averages["F0"] > averages[s]
        assert averages["FI"] > averages[s]
    # LI/LSI beat the fills by a clear margin on average.
    assert averages["LI"] < 0.9 * averages["F0"]
    assert averages["LSI"] < 0.9 * averages["F0"]
    # every cell converged
    for name, norm in per_matrix.items():
        for s in SCHEMES:
            assert norm[s].converged, (name, s)
