"""Table 3: properties of the benchmark matrix suite.

Regenerates the suite table — paper values next to the synthetic
stand-ins' measured properties (#rows, nnz/row, fault-free iterations at
the scaled tolerance).  The stand-ins must preserve the density column
and the convergence-class *ordering* of the paper's suite.
"""

import numpy as np

from repro.harness.reporting import format_table
from repro.matrices import suite
from repro.matrices.suite import SUITE

from benchmarks.common import ITERATION_STUDY_RANKS, emit, experiment


def table3_data():
    rows = []
    for name in suite.names():
        spec = SUITE[name]
        exp = experiment(name, nranks=ITERATION_STUDY_RANKS, n_faults=0)
        a = exp.a
        rows.append(
            {
                "name": name,
                "kind": spec.kind,
                "paper_rows": spec.paper_rows,
                "rows": a.shape[0],
                "paper_nnz": spec.paper_nnz_per_row,
                "nnz": a.nnz / a.shape[0],
                "paper_iters": spec.paper_iters,
                "iters": exp.fault_free.iterations,
            }
        )
    return rows


def test_table3_suite_properties(benchmark):
    rows = benchmark.pedantic(table3_data, rounds=1, iterations=1)
    table = [
        [
            r["name"],
            r["kind"],
            r["paper_rows"],
            r["rows"],
            r["paper_nnz"],
            r["nnz"],
            r["paper_iters"],
            r["iters"],
        ]
        for r in rows
    ]
    text = format_table(
        [
            "matrix",
            "kind",
            "rows (paper)",
            "rows (ours)",
            "nnz/row (paper)",
            "nnz/row (ours)",
            "#iters (paper, 1e-12)",
            "#iters (ours, 1e-8)",
        ],
        table,
        title="Table 3 — matrix suite: paper vs synthetic stand-ins",
        precision=1,
    )
    emit("table3_suite", text)

    # density column matches the paper within 25% (except the dense-row
    # nd24k, deliberately scaled to half density)
    for r in rows:
        if r["name"] == "nd24k":
            continue
        assert abs(r["nnz"] - r["paper_nnz"]) / r["paper_nnz"] < 0.3, r["name"]
    # convergence-class ordering: rank-correlate paper vs ours
    paper = np.array([r["paper_iters"] for r in rows], dtype=float)
    ours = np.array([r["iters"] for r in rows], dtype=float)
    from scipy.stats import spearmanr

    rho, _ = spearmanr(paper, ours)
    assert rho > 0.6, f"iteration-class ordering degraded (rho={rho:.2f})"
    # fastest and slowest classes preserved
    names = [r["name"] for r in rows]
    assert ours[names.index("Andrews")] < 600
    assert ours[names.index("t2dahe")] > 3000
