"""Ablation/extension: multi-level checkpointing (CR-ML, SCR-style [33]).

The paper's Section-6 dilemma: CR-M projects best but "is not practical
to common fault situations with lost data in memory", while CR-D pays
the parallel-file-system tax on every checkpoint.  CR-ML (frequent
memory checkpoints + occasional disk flushes + restore from the cheapest
surviving level) is the standard production answer.  This ablation runs
all three at the same cadence under two memory-survival regimes and
checks:

* when the memory level survives, CR-ML costs ~CR-M but keeps a disk
  safety net;
* when the memory level is always lost, CR-ML still converges (CR-M
  conceptually cannot) at a cost between CR-M's and CR-D's checkpoint
  spending.
"""

from repro.core.recovery import make_scheme
from repro.core.recovery.multilevel import MultiLevelCheckpointRestart
from repro.core.solver import ResilientSolver, SolverConfig
from repro.harness.reporting import format_table
from repro.power.energy import PhaseTag

from benchmarks.common import COST_STUDY_RANKS, emit, experiment

MATRIX = "crystm02"
CADENCE = 50


def ablation_data():
    exp = experiment(MATRIX, nranks=COST_STUDY_RANKS, n_faults=10)
    ff = exp.fault_free

    def run(scheme):
        return ResilientSolver(
            exp.a,
            exp.b,
            scheme=scheme,
            schedule=exp.schedule(),
            config=SolverConfig(
                nranks=COST_STUDY_RANKS, baseline_iters=ff.iterations
            ),
        ).solve()

    reports = {
        "CR-M": run(make_scheme("CR-M", interval_iters=CADENCE)),
        "CR-D": run(make_scheme("CR-D", interval_iters=CADENCE)),
        "CR-ML (mem ok)": run(
            MultiLevelCheckpointRestart(
                memory_interval=CADENCE, disk_every=4, memory_survival=1.0
            )
        ),
        "CR-ML (mem lost)": run(
            MultiLevelCheckpointRestart(
                memory_interval=CADENCE, disk_every=4, memory_survival=0.0
            )
        ),
    }
    return ff, reports


def test_multilevel_ablation(benchmark):
    ff, reports = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = []
    for label, rep in reports.items():
        rows.append(
            [
                label,
                rep.normalized_time(ff),
                rep.normalized_energy(ff),
                rep.account.time(PhaseTag.CHECKPOINT),
                rep.account.time(PhaseTag.RESTORE),
            ]
        )
    text = format_table(
        ["scheme", "T", "E", "ckpt time (s)", "restore time (s)"],
        rows,
        title=(
            f"Ablation — multi-level checkpointing on {MATRIX} "
            f"(cadence {CADENCE}, 10 faults)"
        ),
        precision=3,
    )
    emit("ablation_multilevel", text)

    def ckpt(k):
        return reports[k].account.time(PhaseTag.CHECKPOINT)

    # everything converges — including with the memory level always lost
    for rep in reports.values():
        assert rep.converged
    # CR-ML's checkpoint spending sits between pure-memory and pure-disk
    assert ckpt("CR-M") < ckpt("CR-ML (mem ok)") < ckpt("CR-D")
    # with a healthy memory level, CR-ML's total cost is ~CR-M's
    assert reports["CR-ML (mem ok)"].time_s < 1.15 * reports["CR-M"].time_s
    # losing the memory level costs extra re-execution, but stays usable
    assert (
        reports["CR-ML (mem lost)"].iterations
        >= reports["CR-ML (mem ok)"].iterations
    )
    levels = reports["CR-ML (mem lost)"].details["scheme_details"]["restore_levels"]
    assert set(levels) <= {"disk", "initial"}
