"""Table 6: validation of the analytical models for matrix x104.

Feeds the Section-3 models the parameters measured from the simulated
experiments (t_C per checkpoint, t_const per reconstruction, the fault
rate) and compares predicted vs measured T_res / P / E_res, all
normalized to fault-free.  The paper's own result: FF and RD match
exactly, the models overestimate T_res/E_res for LI/LSI-DVFS (the
a-priori extra-iteration estimate is generous), and the *relative order*
between schemes is preserved.
"""

from repro.core.models.validation import validate_scheme
from repro.harness.reporting import format_table

from benchmarks.common import COST_STUDY_RANKS, emit, experiment, run

SCHEMES = ["RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]


def table6_data():
    exp = experiment("x104", nranks=COST_STUDY_RANKS, cr_interval="young")
    ff = exp.fault_free
    rows = [validate_scheme(ff, ff, nranks=COST_STUDY_RANKS)]
    for s in SCHEMES:
        rows.append(
            validate_scheme(ff, run(exp, s), nranks=COST_STUDY_RANKS)
        )
    return rows


def test_table6_model_validation(benchmark):
    rows = benchmark.pedantic(table6_data, rounds=1, iterations=1)
    table = [list(v.as_row()) for v in rows]
    text = format_table(
        [
            "scheme",
            "T_res (model)",
            "P (model)",
            "E_res (model)",
            "T_res (exp)",
            "P (exp)",
            "E_res (exp)",
        ],
        table,
        title="Table 6 — model vs experiment, x104-class, normalized to FF",
        precision=2,
    )
    emit("table6_validation", text)

    by_name = {v.scheme: v for v in rows}
    # FF and RD use the same data in model and experiment
    ff, rd = by_name["FF"], by_name["RD"]
    assert ff.model_t_res == ff.exp_t_res == 0.0
    assert abs(rd.model_p - rd.exp_p) < 0.05
    assert abs(rd.model_e_res - rd.exp_e_res) < 0.1
    # models and experiments agree on the power ordering: RD highest
    for s in ("LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"):
        assert rd.model_p > by_name[s].model_p
        assert rd.exp_p > by_name[s].exp_p
    # model predictions are positive and the right order of magnitude
    for s in ("LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"):
        v = by_name[s]
        assert v.model_t_res > 0 and v.model_e_res > 0
        assert v.model_t_res < 10 * max(v.exp_t_res, 0.05)
