"""Ablation: fault-arrival process (evenly spaced vs Poisson).

The paper injects faults evenly over the fault-free horizon while its
models assume a memoryless arrival process.  This ablation re-runs the
Figure-5 comparison on one matrix with Poisson arrivals of the same
expected count (several seeds) and checks that the scheme ordering the
paper reads off Figure 5 is robust to the arrival law.
"""

import numpy as np

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import PoissonSchedule
from repro.harness.reporting import format_table

from benchmarks.common import emit, experiment, run

MATRIX = "cvxbqp1"
NRANKS = 64
SCHEMES = ["RD", "F0", "LI", "CR-D"]
SEEDS = [1, 2, 3]


def ablation_data():
    exp = experiment(MATRIX, nranks=NRANKS, n_faults=10)
    ff = exp.fault_free
    even = {s: run(exp, s).normalized_iterations(ff) for s in SCHEMES}
    poisson: dict[str, list[float]] = {s: [] for s in SCHEMES}
    mtbf_iters = ff.iterations / 10  # same expected fault count
    for seed in SEEDS:
        schedule = PoissonSchedule(mtbf_iters=mtbf_iters, seed=seed)
        for s in SCHEMES:
            rep = ResilientSolver(
                exp.a,
                exp.b,
                scheme=make_scheme(s, interval_iters=100),
                schedule=schedule,
                config=SolverConfig(nranks=NRANKS, baseline_iters=ff.iterations),
            ).solve()
            assert rep.converged, (s, seed)
            poisson[s].append(rep.normalized_iterations(ff))
    return even, poisson


def test_fault_timing_ablation(benchmark):
    even, poisson = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = [
        [
            s,
            even[s],
            float(np.mean(poisson[s])),
            float(np.min(poisson[s])),
            float(np.max(poisson[s])),
        ]
        for s in SCHEMES
    ]
    text = format_table(
        ["scheme", "even (paper)", "poisson mean", "poisson min", "poisson max"],
        rows,
        title=(
            f"Ablation — fault arrival law on {MATRIX} "
            f"(10 expected faults, {len(SEEDS)} Poisson seeds)"
        ),
        precision=2,
    )
    emit("ablation_fault_timing", text)

    pmean = {s: float(np.mean(poisson[s])) for s in SCHEMES}
    # the Figure-5 ordering survives the arrival law
    assert pmean["RD"] < 1.05
    assert pmean["LI"] < pmean["F0"]
    assert pmean["CR-D"] < pmean["F0"]
    # accurate recovery is robust to the arrival law...
    assert abs(even["LI"] - pmean["LI"]) / pmean["LI"] < 0.35
    # ...while F0 degrades further under memoryless arrivals: unlike the
    # paper's protocol (no faults after the FF horizon), Poisson faults
    # keep landing during the recovery tail and each one near
    # convergence costs F0 a near-full reconvergence
    assert pmean["F0"] > even["F0"]
