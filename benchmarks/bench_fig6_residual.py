"""Figure 6: residual-vs-iteration histories under faults.

(a) a single fault injected mid-solve on a wathen100-class matrix: the
residual jumps for every scheme except RD (which overlaps FF); F0/FI
jump the most, LI/LSI minimally, CR noticeably (rollback).

(b) 10 faults on the 5-point stencil: LI and CR take fewer iterations
to converge than the fills.
"""

import numpy as np

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import FixedIterationSchedule
from repro.harness.reporting import format_series, format_table

from benchmarks.common import emit, experiment, run

SCHEMES_A = ["RD", "F0", "FI", "LI", "LSI", "CR-D"]
NRANKS = 64


def _history(a, b, scheme_name, schedule, baseline):
    solver = ResilientSolver(
        a,
        b,
        scheme=make_scheme(scheme_name, interval_iters=100),
        schedule=schedule,
        config=SolverConfig(nranks=NRANKS, baseline_iters=baseline),
    )
    return solver.solve()


def figure6_data():
    # (a) single fault at mid-solve, wathen100-class
    exp = experiment("wathen100", nranks=NRANKS, n_faults=0)
    ff = exp.fault_free
    fault_at = ff.iterations // 2
    schedule = FixedIterationSchedule(iterations=[fault_at], victims=[3])
    histories = {"FF": ff.residual_history}
    reports_a = {}
    for s in SCHEMES_A:
        rep = _history(exp.a, exp.b, s, schedule, ff.iterations)
        histories[s] = rep.residual_history
        reports_a[s] = rep
    # (b) 10 faults on the 5-point stencil.  The paper's stencil runs
    # 3162 iterations with a 100-iteration CR cadence (~3%); our scaled
    # stencil converges in ~260, so the faithful cadence is ~8.
    exp_b = experiment("stencil5", nranks=NRANKS, n_faults=10,
                       cr_interval=8)
    reports_b = {"FF": exp_b.fault_free}
    for s in ("F0", "LI", "CR-D"):
        reports_b[s] = run(exp_b, s)
    return fault_at, histories, reports_a, reports_b


def test_figure6_residual_histories(benchmark):
    fault_at, histories, reports_a, reports_b = benchmark.pedantic(
        figure6_data, rounds=1, iterations=1
    )
    # sample each history at a few informative points around the fault
    points = [fault_at - 1, fault_at, fault_at + 5, fault_at + 50]
    series = {
        name: [float(h[p]) if p < len(h) else float(h[-1]) for p in points]
        for name, h in histories.items()
    }
    text = format_series(
        "iteration",
        points,
        series,
        title=(
            "Figure 6(a) — residual around a single fault at iteration "
            f"{fault_at} (wathen100-class, {NRANKS} procs)"
        ),
        precision=6,
    )
    rows_b = [
        [name, rep.iterations, rep.final_relative_residual]
        for name, rep in reports_b.items()
    ]
    text_b = format_table(
        ["scheme", "iterations", "final relres"],
        rows_b,
        title="Figure 6(b) — 10 faults on the 5-point stencil",
        precision=3,
    )
    emit("fig6_residual", text + "\n\n" + text_b)

    ff_h = histories["FF"]
    # RD overlaps FF
    assert np.allclose(histories["RD"][: len(ff_h)], ff_h)
    # F0 and FI overlap each other
    assert np.allclose(histories["F0"], histories["FI"])
    # residual increases visibly at the fault for the fills and for CR
    # (rollback); LI/LSI's increase is minimal, possibly invisible
    for s in ("F0", "FI", "CR-D"):
        assert histories[s][fault_at] > histories[s][fault_at - 1], s
    # F0's jump dominates LI/LSI's
    def jump(s):
        return histories[s][fault_at] / histories[s][fault_at - 1]

    assert jump("F0") > 2 * jump("LI")
    assert jump("F0") > 2 * jump("LSI")
    # (b): LI and CR converge in fewer iterations than F0
    assert reports_b["LI"].iterations < reports_b["F0"].iterations
    assert reports_b["CR-D"].iterations < reports_b["F0"].iterations
