"""Figure 9: projected resilience overhead under weak scaling (50K nnz
per process) with a linearly decreasing system MTBF.

Shape to reproduce: RD flat; FW's T_res/E_res grow monotonically;
CR-D grows fastest and dominates the fault-free cost at scale; CR-M
stays far below everything; the average power of FW and CR-D drops as
recovery time dominates; beyond the plotted range FW and CR-D hit the
"progress halts" regime.
"""

import math

from repro.core.models.projection import (
    FIGURE9_SCHEMES,
    ProjectionConfig,
    project,
)
from repro.harness.reporting import format_table

from benchmarks.common import emit

SIZES = [192, 768, 3072, 12_288, 49_152, 98_304, 196_608]


def figure9_data():
    return project(SIZES, ProjectionConfig())


def _fmt(x):
    return "HALT" if math.isinf(x) or math.isnan(x) else x


def test_figure9_projection(benchmark):
    data = benchmark.pedantic(figure9_data, rounds=1, iterations=1)
    rows = []
    for n_idx, n in enumerate(SIZES):
        mtbf_h = data["RD"][n_idx].system_mtbf_s / 3600.0
        row = [n, mtbf_h]
        for s in FIGURE9_SCHEMES:
            p = data[s][n_idx]
            row.extend([_fmt(p.t_res_ratio), _fmt(p.e_res_ratio), _fmt(p.power_ratio)])
        rows.append(row)
    headers = ["procs", "MTBF(h)"]
    for s in FIGURE9_SCHEMES:
        headers.extend([f"{s} T", f"{s} E", f"{s} P"])
    text = format_table(
        headers,
        rows,
        title=(
            "Figure 9 — projected resilience overhead, weak scaling at "
            "50K nnz/proc, per-proc MTBF 6K h (normalized to FF per size)"
        ),
        precision=3,
    )
    emit("fig9_projection", text)

    plot_sizes = [n for n in SIZES if n <= 98_304]
    # RD flat at (0, 1, 2)
    for p in data["RD"]:
        assert p.t_res_ratio == 0.0 and abs(p.e_res_ratio - 1.0) < 1e-9
    # FW monotone growth
    fw = [p.t_res_ratio for p in data["FW"] if not p.halted]
    assert all(b > a for a, b in zip(fw, fw[1:]))
    # CR-D grows fastest and dominates FF at the top plotted size
    top = len(plot_sizes) - 1
    assert data["CR-D"][top].t_res_ratio > data["FW"][top].t_res_ratio
    assert data["CR-D"][top].t_res_ratio > 1.0
    # CR-M stays small everywhere
    assert all(p.t_res_ratio < 0.1 for p in data["CR-M"])
    # power of FW and CR-D drops with scale
    for s in ("FW", "CR-D"):
        series = [p.power_ratio for p in data[s] if not p.halted]
        assert series[-1] < series[0]
    # the halt regime is reached beyond the plot
    assert data["CR-D"][-1].halted
    assert data["FW"][-1].halted
