"""Ablation: checkpoint-interval policy (Young vs Daly vs fixed).

DESIGN.md calls out the checkpoint cadence as a core design choice: the
paper fixes 100 iterations for the resilience study and uses Young's
formula for the cost study, citing Daly's refinement as the higher-order
alternative.  This ablation sweeps the policy on one matrix and checks
the textbook expectations:

* Young and Daly agree closely when t_C << MTBF (and hence perform the
  same);
* an absurdly long cadence pays in rollback re-execution;
* an absurdly short cadence pays in checkpoint writes;
* both optima beat both extremes on total time.
"""

from repro.checkpoint.interval import daly_interval, interval_in_iterations, young_interval
from repro.checkpoint.store import DiskStore
from repro.core.recovery.checkpoint import CheckpointRestart
from repro.core.solver import ResilientSolver, SolverConfig
from repro.harness.reporting import format_table

from benchmarks.common import COST_STUDY_RANKS, emit, experiment

MATRIX = "crystm02"


def ablation_data():
    exp = experiment(MATRIX, nranks=COST_STUDY_RANKS, n_faults=10)
    ff = exp.fault_free
    mtbf = exp.implied_mtbf_s()
    t_c = DiskStore().write_time_s(exp.b.nbytes, COST_STUDY_RANKS)
    wall = ff.details["iteration_wall_s"]
    young_iters = interval_in_iterations(young_interval(t_c, mtbf), wall)
    daly_iters = interval_in_iterations(daly_interval(t_c, mtbf), wall)
    policies = {
        "young": young_iters,
        "daly": daly_iters,
        "every-2": 2,
        f"every-{max(4 * young_iters, 200)}": max(4 * young_iters, 200),
    }
    reports = {}
    for label, iters in policies.items():
        solver = ResilientSolver(
            exp.a,
            exp.b,
            scheme=CheckpointRestart(DiskStore(), interval_iters=iters, name="CR-D"),
            schedule=exp.schedule(),
            config=SolverConfig(
                nranks=COST_STUDY_RANKS, baseline_iters=ff.iterations
            ),
        )
        reports[label] = (iters, solver.solve())
    return ff, reports


def test_checkpoint_interval_ablation(benchmark):
    ff, reports = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = [
        [label, iters, rep.normalized_time(ff), rep.normalized_energy(ff)]
        for label, (iters, rep) in reports.items()
    ]
    text = format_table(
        ["policy", "interval (iters)", "T", "E"],
        rows,
        title=f"Ablation — CR-D checkpoint cadence on {MATRIX} (FF=1)",
        precision=3,
    )
    emit("ablation_interval", text)

    times = {label: rep.time_s for label, (_, rep) in reports.items()}
    young_t = times["young"]
    daly_t = times["daly"]
    # Young and Daly nearly coincide in the t_C << MTBF regime
    assert abs(young_t - daly_t) / young_t < 0.10
    # the optimum clearly beats over-eager checkpointing, and stays
    # within ~10% of the best policy tested (on our restart-penalty-
    # dominated stand-ins the cost curve is flat on the long side, so
    # very long cadences are not punished as hard as Young predicts —
    # recorded as a deviation in EXPERIMENTS.md)
    assert young_t < 0.8 * times["every-2"]
    assert young_t <= 1.10 * min(times.values())
    # every variant still converges correctly
    for _, rep in reports.values():
        assert rep.converged
