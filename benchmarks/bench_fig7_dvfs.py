"""Figure 7: power reduction and energy savings with LI-DVFS/LSI-DVFS.

(a) power profile of the nd24k-class matrix on a single 24-core node
with plain LI vs LI-DVFS: DVFS cuts the reconstruction-phase node power
by ~39-40% with no performance impact.

(b) average normalized time / power / energy over the 14-matrix suite
with and without DVFS, plus the E_res/E_solve ratio: DVFS keeps T flat
and reduces E (the paper reports -11% for LI, -16% for LSI).
"""

import numpy as np

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import FixedIterationSchedule
from repro.harness.normalize import normalize_reports, suite_average
from repro.harness.reporting import format_table
from repro.matrices import suite

from benchmarks.common import COST_STUDY_RANKS, emit, experiment, run

NODE_RANKS = 24  # one dual-socket node


def power_profile_data():
    """(a): single-node LI vs LI-DVFS with one mid-solve fault."""
    exp = experiment("nd24k", nranks=NODE_RANKS, n_faults=0)
    ff = exp.fault_free
    schedule = FixedIterationSchedule(
        iterations=[ff.iterations // 2], victims=[5]
    )
    out = {}
    for name in ("LI", "LI-DVFS"):
        solver = ResilientSolver(
            exp.a,
            exp.b,
            scheme=make_scheme(name, construct_tol=1e-6),
            schedule=schedule,
            config=SolverConfig(nranks=NODE_RANKS, baseline_iters=ff.iterations),
        )
        report = solver.solve()
        compute_w = solver.power_compute_w()
        recon = report.account
        from repro.power.energy import PhaseTag

        recon_t = recon.time(PhaseTag.RECONSTRUCT)
        recon_w = (
            recon.energy(PhaseTag.RECONSTRUCT) / recon_t if recon_t > 0 else 0.0
        )
        out[name] = (report, compute_w, recon_w)
    return out


def suite_dvfs_data():
    """(b): suite averages with and without DVFS."""
    per_matrix = {}
    ratios = {}
    for name in suite.names():
        exp = experiment(name, nranks=COST_STUDY_RANKS, cr_interval="young")
        reports = {"FF": exp.fault_free}
        for s in ("LI", "LSI", "LI-DVFS", "LSI-DVFS"):
            reports[s] = run(exp, s)
        per_matrix[name] = normalize_reports(reports)
        ratios[name] = {
            s: reports[s].account.resilience_ratio()
            for s in ("LI", "LSI", "LI-DVFS", "LSI-DVFS")
        }
    return per_matrix, ratios


def test_figure7a_power_profile(benchmark):
    out = benchmark.pedantic(power_profile_data, rounds=1, iterations=1)
    rows = []
    for name, (report, compute_w, recon_w) in out.items():
        rows.append(
            [name, compute_w, recon_w, recon_w / compute_w, report.iterations]
        )
    text = format_table(
        ["scheme", "compute W", "reconstruct W", "ratio", "iterations"],
        rows,
        title=(
            "Figure 7(a) — node power during reconstruction, nd24k-class, "
            "one 24-core node"
        ),
        precision=3,
    )
    emit("fig7a_power_profile", text)

    li_report, li_compute, li_recon = out["LI"]
    dv_report, dv_compute, dv_recon = out["LI-DVFS"]
    # identical performance
    assert dv_report.iterations == li_report.iterations
    # plain LI: ~0.75x of compute power; LI-DVFS: ~0.45x during the
    # construction window (Section 4.2).  The measured reconstruct phase
    # also contains the full-power rhs gather, so allow a little slack.
    assert li_recon / li_compute == rounded(0.75, 0.04)
    assert dv_recon / dv_compute == rounded(0.46, 0.06)
    # DVFS cuts reconstruction-phase power by ~35-40%
    assert 0.30 < 1 - dv_recon / li_recon < 0.45


def rounded(x, tol=0.03):
    import pytest

    return pytest.approx(x, abs=tol)


def test_figure7b_suite_energy_savings(benchmark):
    per_matrix, ratios = benchmark.pedantic(suite_dvfs_data, rounds=1, iterations=1)
    rows = []
    for s in ("LI", "LI-DVFS", "LSI", "LSI-DVFS"):
        avg = suite_average(per_matrix, s)
        res_ratio = float(np.mean([r[s] for r in ratios.values()]))
        rows.append([s, avg["time"], avg["power"], avg["energy"], res_ratio])
    text = format_table(
        ["scheme", "T", "P", "E", "E_res/E_solve"],
        rows,
        title=(
            "Figure 7(b) — suite-average normalized time/power/energy "
            f"({COST_STUDY_RANKS} procs, 10 faults, FF=1)"
        ),
        precision=3,
    )
    emit("fig7b_energy_savings", text)

    li = suite_average(per_matrix, "LI")
    li_dvfs = suite_average(per_matrix, "LI-DVFS")
    lsi = suite_average(per_matrix, "LSI")
    lsi_dvfs = suite_average(per_matrix, "LSI-DVFS")
    # same performance
    assert li_dvfs["time"] == rounded(li["time"], 0.01)
    assert lsi_dvfs["time"] == rounded(lsi["time"], 0.01)
    # DVFS saves energy and power
    assert li_dvfs["energy"] <= li["energy"]
    assert lsi_dvfs["energy"] <= lsi["energy"]
    assert li_dvfs["power"] <= li["power"]
    # more energy goes to solving: E_res/E_solve shrinks
    mean_ratio = lambda s: float(np.mean([r[s] for r in ratios.values()]))
    assert mean_ratio("LI-DVFS") <= mean_ratio("LI")
    assert mean_ratio("LSI-DVFS") <= mean_ratio("LSI")
