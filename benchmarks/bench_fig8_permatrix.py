"""Figure 8: normalized time, energy and average CPU power for three
matrices (x104, nd24k, cvxbqp1) under the cost-study schemes.

The paper's reading: the best scheme depends on the workload — CR-M is
most efficient for x104's irregular pattern, RD costs the least *time*
for nd24k, and FW is most efficient for cvxbqp1 thanks to accurate
reconstruction.  The robust shape: RD always has the most power; the
time/energy winner varies per matrix.
"""

from repro.harness.experiment import COST_STUDY_SCHEMES
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table

from benchmarks.common import COST_STUDY_RANKS, emit, experiment, run

MATRICES = ["x104", "nd24k", "cvxbqp1"]


def figure8_data():
    out = {}
    for name in MATRICES:
        exp = experiment(name, nranks=COST_STUDY_RANKS, cr_interval="young")
        reports = {"FF": exp.fault_free}
        for s in COST_STUDY_SCHEMES:
            reports[s] = run(exp, s)
        out[name] = normalize_reports(reports)
    return out


def test_figure8_per_matrix_costs(benchmark):
    data = benchmark.pedantic(figure8_data, rounds=1, iterations=1)
    rows = []
    for name in MATRICES:
        for s in COST_STUDY_SCHEMES:
            m = data[name][s]
            rows.append([name, s, m.time, m.energy, m.power])
    text = format_table(
        ["matrix", "scheme", "T", "E", "P"],
        rows,
        title=(
            "Figure 8 — normalized time/energy/power per matrix "
            f"({COST_STUDY_RANKS} procs, 10 faults, FF=1)"
        ),
        precision=3,
    )
    emit("fig8_permatrix", text)

    for name in MATRICES:
        norm = data[name]
        # RD: no time overhead, most power
        assert norm["RD"].time < 1.1
        for s in ("LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"):
            assert norm["RD"].power > norm[s].power, (name, s)
        # every recovery scheme lands within the paper's ~2.5x envelope
        for s in COST_STUDY_SCHEMES:
            assert norm[s].converged
            assert norm[s].time < 4.0, (name, s)
    # the winner differs across matrices or schemes stay competitive:
    # check that no single scheme dominates energy on all three matrices
    # by a wide margin (workload dependence, the figure's message)
    winners = {
        name: min(
            (s for s in COST_STUDY_SCHEMES),
            key=lambda s: data[name][s].energy,
        )
        for name in MATRICES
    }
    emit(
        "fig8_winners",
        "energy winners per matrix: "
        + ", ".join(f"{m}: {w}" for m, w in winners.items()),
    )
