"""Ablation/extension: do the paper's conclusions survive a different
iterative solver?

The paper's future work is to "study the performance and energy
optimization for more applications".  This ablation re-runs the scheme
comparison with Jacobi-preconditioned CG on a badly row-scaled matrix:
PCG converges ~10x faster, faults still destroy the victim block, and
the recovery schemes plug in unchanged.  Checks: the scheme ordering
(RD iteration-exact; interpolation beats fills) and the DVFS energy win
hold under the new solver too.
"""

from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule
from repro.harness.reporting import format_table
from repro.matrices import suite

from benchmarks.common import emit

MATRIX = "msc01050"   # strongly row-scaled: the PCG showcase
NRANKS = 24
SCHEMES = ["RD", "F0", "LI", "LI-DVFS", "CR-D"]


def ablation_data():
    a = suite.build(MATRIX)
    import numpy as np

    b = a @ np.random.default_rng(0).standard_normal(a.shape[0])
    out = {}
    for label, precond in (("CG", None), ("Jacobi-PCG", "jacobi")):
        def cfg(*, precond=precond, **kw):
            return SolverConfig(nranks=NRANKS, preconditioner=precond, **kw)

        ff = ResilientSolver(a, b, config=cfg()).solve()
        reports = {"FF": ff}
        for s in SCHEMES:
            reports[s] = ResilientSolver(
                a,
                b,
                scheme=make_scheme(s, interval_iters=100),
                schedule=EvenlySpacedSchedule(n_faults=10),
                config=cfg(baseline_iters=ff.iterations),
            ).solve()
        out[label] = reports
    return out


def test_pcg_ablation(benchmark):
    data = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = []
    for label, reports in data.items():
        ff = reports["FF"]
        for s in ["FF", *SCHEMES]:
            rep = reports[s]
            rows.append(
                [
                    label,
                    s,
                    rep.iterations,
                    rep.normalized_time(ff),
                    rep.normalized_energy(ff),
                ]
            )
    text = format_table(
        ["solver", "scheme", "iters", "T", "E"],
        rows,
        title=(
            f"Ablation — plain CG vs Jacobi-PCG on {MATRIX} "
            "(10 faults, normalized per solver)"
        ),
        precision=2,
    )
    emit("ablation_pcg", text)

    cg, pcg = data["CG"], data["Jacobi-PCG"]
    # PCG is the better solver on this matrix, faults or not
    assert pcg["FF"].iterations < cg["FF"].iterations / 3
    for s in SCHEMES:
        assert pcg[s].converged
        assert pcg[s].time_s < cg[s].time_s
    # the paper's scheme relations survive the solver change
    ffp = pcg["FF"]
    assert pcg["RD"].iterations == ffp.iterations
    assert pcg["LI"].iterations <= pcg["F0"].iterations
    assert pcg["LI-DVFS"].energy_j <= pcg["LI"].energy_j
    assert pcg["LI-DVFS"].time_s == pcg["LI"].time_s
