"""Shared machinery for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper.
Experiment runs are memoized at two levels: a per-process dict (several
benchmarks consume the same sweeps within one pytest session) backed by
the persistent campaign :class:`~repro.campaign.store.ResultStore`, so
re-running any benchmark is incremental across processes and sessions.
Set ``REPRO_CACHE=0`` to disable the persistent layer, or
``REPRO_CACHE_DIR=/path`` to relocate it (default: ``.repro-cache/`` at
the repo root, shared with ``python -m repro.cli campaign``).

Below the report store, problem *setup* (suite matrix builds, halo
analyses, measured iteration costs) is served by the content-keyed cache
in :mod:`repro.matrices.cache` — same root, ``problems/`` subdirectory,
same ``REPRO_CACHE``/``REPRO_CACHE_DIR`` switches — so benchmarks that
miss the report store still skip the setup work campaign runs and tests
already paid for.

Each benchmark both prints its reproduced rows (visible with
``pytest -s``) and writes them under ``benchmarks/results/`` so
``--benchmark-only`` runs leave artefacts.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.campaign.spec import BASELINE_SCHEME, CampaignCell
from repro.core.report import SolveReport
from repro.harness.experiment import Experiment, ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Process counts.  The resilience (iteration-count) study uses the
#: paper's 256 processes — iteration counts are scale-invariant.  The
#: cost studies instead preserve the paper's *rows per rank* (~300-600:
#: e.g. x104's 108k rows on 192 cores): our matrices are ~10x smaller,
#: so 24 ranks (one node) keeps recovery phases the same relative size
#: they had on the paper's testbed.
COST_STUDY_RANKS = 24
ITERATION_STUDY_RANKS = 256

_experiments: dict[tuple, Experiment] = {}
_reports: dict[tuple, SolveReport] = {}

_store = None
_store_unavailable = False


def result_store():
    """The shared persistent store, or ``None`` when disabled/broken."""
    global _store, _store_unavailable
    if _store_unavailable or os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    if _store is None:
        from repro.campaign.store import ResultStore

        root = os.environ.get("REPRO_CACHE_DIR") or (
            Path(__file__).parent.parent / ".repro-cache"
        )
        try:
            _store = ResultStore(root)
        except OSError:
            _store_unavailable = True
            return None
    return _store


def experiment(
    matrix: str,
    *,
    nranks: int,
    n_faults: int = 10,
    cr_interval="paper",
    seed: int = 0,
    scale: float = 1.0,
) -> Experiment:
    """Memoized Experiment for (matrix, protocol) cells."""
    key = (matrix, nranks, n_faults, str(cr_interval), seed, scale)
    if key not in _experiments:
        exp = Experiment(
            ExperimentConfig(
                matrix=matrix,
                nranks=nranks,
                n_faults=n_faults,
                cr_interval=cr_interval,
                seed=seed,
                scale=scale,
            )
        )
        store = result_store()
        if store is not None:
            ff = store.get(CampaignCell(exp.config, BASELINE_SCHEME))
            if ff is not None and ff.converged:
                exp.prime_baseline(ff)
        _experiments[key] = exp
    return _experiments[key]


def run(exp: Experiment, scheme: str) -> SolveReport:
    """Memoized scheme run, read/written through the persistent store."""
    c = exp.config
    key = (c.matrix, c.nranks, c.n_faults, str(c.cr_interval), c.seed, c.scale, scheme)
    if key not in _reports:
        store = result_store()
        cell = CampaignCell(exp.config, scheme)
        report = store.get(cell) if store is not None else None
        if report is None:
            had_baseline = exp.has_baseline
            t0 = time.perf_counter()
            report = exp.run(scheme)
            elapsed = time.perf_counter() - t0
            if store is not None:
                store.put(cell, report, elapsed_s=elapsed)
                # persist the baseline the run computed on the way
                if not had_baseline and scheme != BASELINE_SCHEME:
                    ff_cell = CampaignCell(exp.config, BASELINE_SCHEME)
                    if ff_cell not in store:
                        store.put(ff_cell, exp.fault_free)
        elif scheme == BASELINE_SCHEME and not exp.has_baseline and report.converged:
            exp.prime_baseline(report)
        _reports[key] = report
    return _reports[key]


def emit(name: str, text: str) -> str:
    """Print a reproduced table/figure and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text
