"""Shared machinery for the reproduction benchmarks.

Every ``bench_*`` module regenerates one table or figure of the paper.
Experiment runs are memoized per pytest session (several benchmarks
consume the same sweeps), and each benchmark both prints its reproduced
rows (visible with ``pytest -s``) and writes them under
``benchmarks/results/`` so ``--benchmark-only`` runs leave artefacts.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.report import SolveReport
from repro.harness.experiment import Experiment, ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"

#: Process counts.  The resilience (iteration-count) study uses the
#: paper's 256 processes — iteration counts are scale-invariant.  The
#: cost studies instead preserve the paper's *rows per rank* (~300-600:
#: e.g. x104's 108k rows on 192 cores): our matrices are ~10x smaller,
#: so 24 ranks (one node) keeps recovery phases the same relative size
#: they had on the paper's testbed.
COST_STUDY_RANKS = 24
ITERATION_STUDY_RANKS = 256

_experiments: dict[tuple, Experiment] = {}
_reports: dict[tuple, SolveReport] = {}


def experiment(
    matrix: str,
    *,
    nranks: int,
    n_faults: int = 10,
    cr_interval="paper",
    seed: int = 0,
    scale: float = 1.0,
) -> Experiment:
    """Memoized Experiment for (matrix, protocol) cells."""
    key = (matrix, nranks, n_faults, str(cr_interval), seed, scale)
    if key not in _experiments:
        _experiments[key] = Experiment(
            ExperimentConfig(
                matrix=matrix,
                nranks=nranks,
                n_faults=n_faults,
                cr_interval=cr_interval,
                seed=seed,
                scale=scale,
            )
        )
    return _experiments[key]


def run(exp: Experiment, scheme: str) -> SolveReport:
    """Memoized scheme run on a memoized experiment."""
    c = exp.config
    key = (c.matrix, c.nranks, c.n_faults, str(c.cr_interval), c.seed, c.scale, scheme)
    if key not in _reports:
        _reports[key] = exp.run(scheme)
    return _reports[key]


def emit(name: str, text: str) -> str:
    """Print a reproduced table/figure and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text
