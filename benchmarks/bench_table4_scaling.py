"""Table 4: normalized iterations to converge under various parallel
settings for matrix crystm02 (4, 16, 64, 256 processes, 10 faults).

The paper's finding: for a fixed-size problem, each recovery mechanism's
normalized iteration count is essentially constant across process
counts, and the scheme ordering (RD = 1 < LI/LSI/CR < F0/FI) holds at
every count.
"""

import numpy as np

from repro.harness.experiment import ITERATION_STUDY_SCHEMES
from repro.harness.normalize import normalize_reports
from repro.harness.reporting import format_table

from benchmarks.common import emit, experiment, run

PROCESS_COUNTS = [4, 16, 64, 256]
SCHEMES = ITERATION_STUDY_SCHEMES


def table4_data():
    out = {}
    for p in PROCESS_COUNTS:
        exp = experiment("crystm02", nranks=p, n_faults=10)
        reports = {"FF": exp.fault_free}
        for s in SCHEMES:
            reports[s] = run(exp, s)
        out[p] = normalize_reports(reports)
    return out


def test_table4_parallel_invariance(benchmark):
    data = benchmark.pedantic(table4_data, rounds=1, iterations=1)
    rows = [
        [p, 1.0, *(data[p][s].iterations for s in SCHEMES)]
        for p in PROCESS_COUNTS
    ]
    text = format_table(
        ["#p", "FF", *SCHEMES],
        rows,
        title="Table 4 — normalized iterations vs process count (crystm02-class)",
        precision=2,
    )
    emit("table4_scaling", text)

    # RD is exactly the fault-free count at every process count
    for p in PROCESS_COUNTS:
        assert data[p]["RD"].iterations == 1.0

    # the fills are the worst at every count, by a clear margin over LI
    for p in PROCESS_COUNTS:
        assert data[p]["F0"].iterations > data[p]["LI"].iterations
    # LSI's interpolant weakens when a single fault wipes 25% of the
    # system (p=4); from 16 processes up it clearly beats the fills
    for p in PROCESS_COUNTS[1:]:
        assert data[p]["FI"].iterations > data[p]["LSI"].iterations

    # near-invariance across process counts: the spread of each scheme's
    # normalized iterations over p stays modest (paper: constant; the
    # fault wound shrinks as blocks shrink, so allow a loose band)
    for s in SCHEMES:
        vals = np.array([data[p][s].iterations for p in PROCESS_COUNTS])
        assert vals.max() - vals.min() <= 0.5, (s, vals)
