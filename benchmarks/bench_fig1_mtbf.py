"""Figure 1: estimated MTBF for exascale systems from petascale systems.

Regenerates the per-fault-class system MTBF for a 20K-node petascale
machine (today's technology) and a 1M-node exascale machine (11 nm),
i.e. the two bar groups of Figure 1.
"""

from repro.faults.events import FaultClass
from repro.faults.mtbf import EXASCALE, PETASCALE, MtbfEstimator
from repro.harness.reporting import format_table

from benchmarks.common import emit


def figure1_rows():
    est = MtbfEstimator()
    rows = []
    for cls in FaultClass:
        rows.append(
            [
                cls.label,
                cls.kind.value,
                est.system_mtbf(cls, PETASCALE),
                est.system_mtbf(cls, PETASCALE) / 24.0,
                est.system_mtbf(cls, EXASCALE),
            ]
        )
    combined = [
        "ALL",
        "-",
        est.combined_system_mtbf(PETASCALE),
        est.combined_system_mtbf(PETASCALE) / 24.0,
        est.combined_system_mtbf(EXASCALE),
    ]
    return rows + [combined]


def test_figure1_mtbf(benchmark):
    rows = benchmark.pedantic(figure1_rows, rounds=1, iterations=1)
    text = format_table(
        ["class", "kind", "peta MTBF (h)", "peta MTBF (d)", "exa MTBF (h)"],
        rows,
        title=(
            "Figure 1 — system MTBF per fault class "
            "(petascale: 20K nodes; exascale: 1M nodes, 11 nm)"
        ),
        precision=2,
    )
    emit("fig1_mtbf", text)
    # Paper's headline: petascale 1-7 days, exascale within an hour.
    for row in rows[:-1]:
        assert 1.0 <= row[3] <= 7.5
        assert row[4] <= 4.0
    assert rows[-1][4] < 1.0
