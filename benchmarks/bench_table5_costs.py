"""Table 5: time, power, and energy cost of resilience, averaged over
the matrix suite (Young-derived CR cadence, DVFS-optimized FW).

Shape to reproduce: RD = (1, 2, 2); LI-DVFS incurs the least energy
overhead among the *forward* paths and its power sits below 1; CR-M has
the least time overhead except RD; CR-D costs the most of the two CR
variants; RD always consumes the most power.
"""

from repro.harness.experiment import COST_STUDY_SCHEMES
from repro.harness.normalize import normalize_reports, suite_average
from repro.harness.reporting import format_table
from repro.matrices import suite

from benchmarks.common import COST_STUDY_RANKS, emit, experiment, run

ROW_ORDER = ["FF", "RD", "LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"]

#: The paper's Table 5, for side-by-side display.
PAPER_TABLE5 = {
    "FF": (1.0, 1.0, 1.0),
    "RD": (1.0, 2.0, 2.0),
    "LI-DVFS": (2.12, 0.84, 1.78),
    "LSI-DVFS": (2.35, 0.81, 1.90),
    "CR-M": (1.83, 0.98, 1.79),
    "CR-D": (2.42, 0.93, 2.25),
}


def table5_data():
    per_matrix = {}
    for name in suite.names():
        exp = experiment(name, nranks=COST_STUDY_RANKS, cr_interval="young")
        reports = {"FF": exp.fault_free}
        for s in COST_STUDY_SCHEMES:
            reports[s] = run(exp, s)
        per_matrix[name] = normalize_reports(reports)
    return per_matrix


def test_table5_resilience_costs(benchmark):
    per_matrix = benchmark.pedantic(table5_data, rounds=1, iterations=1)
    averages = {s: suite_average(per_matrix, s) for s in ROW_ORDER}
    rows = []
    for s in ROW_ORDER:
        a = averages[s]
        pt, pp, pe = PAPER_TABLE5[s]
        rows.append([s, a["time"], pt, a["power"], pp, a["energy"], pe])
    text = format_table(
        ["scheme", "T", "T(paper)", "P", "P(paper)", "E", "E(paper)"],
        rows,
        title=(
            "Table 5 — normalized resilience costs, suite average "
            f"({COST_STUDY_RANKS} procs, 10 faults, Young CR cadence)"
        ),
        precision=2,
    )
    emit("table5_costs", text)

    # RD row is exact by construction
    assert abs(averages["RD"]["time"] - 1.0) < 0.1
    assert abs(averages["RD"]["power"] - 2.0) < 0.05
    assert abs(averages["RD"]["energy"] - 2.0) < 0.2
    # RD always consumes the most power
    for s in ("LI-DVFS", "LSI-DVFS", "CR-M", "CR-D"):
        assert averages["RD"]["power"] > averages[s]["power"]
    # CR-M incurs the least time overhead except RD
    for s in ("LI-DVFS", "LSI-DVFS", "CR-D"):
        assert averages["CR-M"]["time"] <= averages[s]["time"] + 0.05
    # CR-D costs more than CR-M in both time and energy
    assert averages["CR-D"]["time"] > averages["CR-M"]["time"]
    assert averages["CR-D"]["energy"] > averages["CR-M"]["energy"]
    # the DVFS forward paths draw less average power than the FF profile
    assert averages["LI-DVFS"]["power"] < 1.0
    assert averages["LSI-DVFS"]["power"] < 1.0
