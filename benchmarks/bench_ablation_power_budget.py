"""Ablation/extension: resilience under a machine power budget.

Section 2.3: "The additional power required to provide resilience
reduces the power available for computation and thus impacts the
application's performance and scalability."  This ablation makes that
quantitative.  A fixed machine budget must cover *both* computation and
resilience:

* RD needs 2x the cores, so under a budget B its per-core share is
  halved — it must run derated (or not at all), surrendering its
  zero-time-overhead advantage;
* the single-machine schemes (CR, FW) keep the full budget and run at
  full speed.

We run LI-DVFS and CR-M at the full budget and RD at half the per-core
budget (its replica consumes the other half), and compare
time-to-solution.
"""


from repro.core.recovery import make_scheme
from repro.core.solver import ResilientSolver, SolverConfig
from repro.faults.schedule import EvenlySpacedSchedule
from repro.harness.reporting import format_table

from benchmarks.common import emit, experiment

MATRIX = "nd24k"   # dense rows: compute-bound, where derating bites
NRANKS = 8
P_CORE_W = 10.0


def ablation_data():
    exp = experiment(MATRIX, nranks=NRANKS, n_faults=5)
    ff = exp.fault_free
    budget = NRANKS * P_CORE_W  # exactly one machine at full tilt
    out = {}

    def run(name, cap):
        return ResilientSolver(
            exp.a,
            exp.b,
            scheme=make_scheme(name, interval_iters=100),
            schedule=EvenlySpacedSchedule(n_faults=5),
            config=SolverConfig(
                nranks=NRANKS, baseline_iters=ff.iterations, power_cap_w=cap
            ),
        ).solve()

    # single-machine schemes enjoy the whole budget (no derating needed)
    out["LI-DVFS @ full budget"] = run("LI-DVFS", budget)
    out["CR-M @ full budget"] = run("CR-M", budget)
    # RD's replica eats half the budget: primary runs capped at B/2
    out["RD @ half budget"] = run("RD", budget / 2)
    return ff, budget, out


def test_power_budget_ablation(benchmark):
    ff, budget, reports = benchmark.pedantic(ablation_data, rounds=1, iterations=1)
    rows = []
    for label, rep in reports.items():
        # RD's reported average power already includes the replica
        # (energy_multiplier), so it IS the machine draw.
        rows.append(
            [
                label,
                rep.details["operating_frequency_ghz"],
                rep.time_s / ff.time_s,
                rep.average_power_w,
                rep.converged,
            ]
        )
    text = format_table(
        ["configuration", "f (GHz)", "T vs uncapped FF", "machine W", "conv"],
        rows,
        title=(
            f"Ablation — resilience under a {budget:.0f} W budget "
            f"({MATRIX}, {NRANKS} ranks, 5 faults)"
        ),
        precision=2,
    )
    emit("ablation_power_budget", text)

    # everything converges and respects the budget
    for label, rep in reports.items():
        assert rep.converged, label
        assert rep.average_power_w <= budget * 1.001, label
    # under the budget, RD's zero-overhead advantage inverts: the
    # derated primary is slower than full-speed forward recovery or CR
    rd = reports["RD @ half budget"]
    assert rd.details["operating_frequency_ghz"] < 2.3
    assert rd.time_s > reports["CR-M @ full budget"].time_s
    assert rd.time_s > reports["LI-DVFS @ full budget"].time_s
