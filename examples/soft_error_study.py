#!/usr/bin/env python
"""Soft errors (SDC) vs hard faults: which recovery do you need?

The paper's fault taxonomy (Section 2.1) distinguishes silent data
corruption from node failures.  This example injects both kinds into the
same solve and compares three answers:

* **LI** forward recovery — rebuilds the victim block either way;
* **RD** (DMR) — exact recovery of detected faults, but a silently
  corrupted copy cannot be out-voted with only two replicas;
* **TMR** — 3x power, and a majority vote masks single-copy SDC
  (the classical motivation for triple redundancy).

Run:  python examples/soft_error_study.py
"""

import numpy as np

from repro import ResilientSolver, SolverConfig, make_scheme
from repro.faults.events import FaultClass
from repro.faults.schedule import FixedIterationSchedule
from repro.matrices import suite


def main() -> None:
    a = suite.build("wathen100")
    b = a @ np.random.default_rng(0).standard_normal(a.shape[0])
    config = SolverConfig(nranks=32)
    ff = ResilientSolver(a, b, config=config).solve()
    mid = ff.iterations // 2

    print(f"fault-free: {ff.iterations} iterations\n")
    print(f"{'scheme':8s} {'fault':5s} {'iters':>6s} {'T':>6s} {'E':>6s} {'P':>6s}")
    for fault_class in (FaultClass.SNF, FaultClass.SDC):
        schedule = FixedIterationSchedule(
            iterations=[mid], victims=[3], fault_class=fault_class
        )
        for name in ("LI", "RD", "TMR"):
            rep = ResilientSolver(
                a,
                b,
                scheme=make_scheme(name),
                schedule=schedule,
                config=SolverConfig(nranks=32, baseline_iters=ff.iterations),
            ).solve()
            print(
                f"{name:8s} {fault_class.label:5s} {rep.iterations:6d} "
                f"{rep.normalized_time(ff):6.2f} {rep.normalized_energy(ff):6.2f} "
                f"{rep.normalized_power(ff):6.2f}"
            )

    print(
        "\nReading: every scheme restores correctness for both fault kinds "
        "(detection is assumed, per the paper); the difference is cost — "
        "LI pays a few extra iterations at ~1x power, RD/TMR pay 2x/3x "
        "power for zero iteration overhead.  Only TMR could also *mask* "
        "the SDC without a detector:",
        f"can_outvote_sdc = {make_scheme('TMR').can_outvote_sdc}",
    )


if __name__ == "__main__":
    main()
