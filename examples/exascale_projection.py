#!/usr/bin/env python
"""Project resilience cost to exascale (Section 6 / Figure 9).

Sweeps system size under fixed-time weak scaling (50K nnz per process)
with a per-processor MTBF of 6K hours — so the system MTBF shrinks
linearly — and reports each scheme's normalized T_res / E_res / average
power, including the size at which checkpoint/restart and forward
recovery hit the "progress halts" wall.

Run:  python examples/exascale_projection.py
"""

import math

from repro.core.models.projection import (
    FIGURE9_SCHEMES,
    ProjectionConfig,
    project,
    project_scheme,
)
from repro.harness.reporting import format_table

SIZES = [192, 768, 3072, 12_288, 49_152, 98_304, 196_608, 786_432]


def first_halt_size(scheme: str, cfg: ProjectionConfig) -> int | None:
    """Smallest power-of-two-ish size at which the scheme halts."""
    n = 192
    while n <= 4_000_000:
        if project_scheme(scheme, n, cfg).halted:
            return n
        n *= 2
    return None


def main() -> None:
    cfg = ProjectionConfig()
    data = project(SIZES, cfg)

    fmt = lambda x: "HALT" if (math.isinf(x) or math.isnan(x)) else round(x, 3)
    rows = []
    for i, n in enumerate(SIZES):
        row = [n, round(data["RD"][i].system_mtbf_s / 60.0, 1)]
        for s in FIGURE9_SCHEMES:
            p = data[s][i]
            row.append(fmt(p.t_res_ratio))
            row.append(fmt(p.e_res_ratio))
        rows.append(row)
    headers = ["procs", "MTBF (min)"]
    for s in FIGURE9_SCHEMES:
        headers += [f"{s} T_res", f"{s} E_res"]
    print(
        format_table(
            headers,
            rows,
            title="projected resilience overhead (normalized to fault-free)",
            precision=3,
        )
    )

    print("\nwhere each scheme stops making progress:")
    for s in ("CR-D", "FW", "CR-M"):
        halt = first_halt_size(s, cfg)
        print(
            f"  {s:<5} halts at ~{halt:,} processes"
            if halt
            else f"  {s:<5} never halts in the explored range"
        )
    print(
        "\nTakeaways (matching the paper): RD's overhead is flat but always "
        "2x energy; CR-D's overhead grows fastest and dominates first; FW "
        "grows more slowly; CR-M stays cheap but cannot survive lost "
        "memory in practice."
    )


if __name__ == "__main__":
    main()
