#!/usr/bin/env python
"""Power-managed forward recovery on a single node (Section 4.2).

Runs the nd24k-class matrix on one simulated 24-core node, injects one
mid-solve fault, and recovers it with plain LI and with LI-DVFS.  The
simulated-RAPL power traces are rendered as ASCII so the Figure-7(a)
plateaus are visible: compute plateau, the reconstruction dip, and the
much deeper dip once DVFS parks the idle cores at f_min.

Run:  python examples/power_managed_recovery.py
"""

import numpy as np

from repro import ResilientSolver, SolverConfig, make_scheme
from repro.faults.schedule import FixedIterationSchedule
from repro.matrices import suite
from repro.power.energy import PhaseTag

NRANKS = 24  # one dual-socket node


def ascii_trace(times, watts, width: int = 72, height: int = 12) -> str:
    """Downsample a power trace into an ASCII strip chart."""
    if len(times) == 0:
        return "(empty trace)"
    bins = np.array_split(np.arange(len(watts)), width)
    levels = np.array([watts[b].mean() for b in bins if len(b)])
    lo, hi = 0.0, levels.max() * 1.05
    rows = []
    for h in range(height, 0, -1):
        cut = lo + (hi - lo) * h / height
        rows.append(
            f"{cut:7.0f}W |" + "".join("#" if v >= cut else " " for v in levels)
        )
    rows.append(" " * 9 + "+" + "-" * len(levels))
    return "\n".join(rows)


def main() -> None:
    a = suite.build("nd24k")
    b = a @ np.random.default_rng(0).standard_normal(a.shape[0])
    ff = ResilientSolver(a, b, config=SolverConfig(nranks=NRANKS)).solve()
    fault_at = ff.iterations // 2
    schedule = FixedIterationSchedule(iterations=[fault_at], victims=[7])

    for name in ("LI", "LI-DVFS"):
        solver = ResilientSolver(
            a,
            b,
            scheme=make_scheme(name),
            schedule=schedule,
            config=SolverConfig(nranks=NRANKS, baseline_iters=ff.iterations),
        )
        report = solver.solve()
        recon_t = report.account.time(PhaseTag.RECONSTRUCT)
        recon_w = (
            report.account.energy(PhaseTag.RECONSTRUCT) / recon_t
            if recon_t
            else 0.0
        )
        compute_w = solver.power_compute_w()
        # zoom the trace into a window around the reconstruction dip so
        # the Figure-7(a) plateaus are visible
        dips = [p for p in report.rapl.log.phases if p.tag == "reconstruct"]
        if dips:
            window = 6 * max(sum(d.duration for d in dips), 1e-6)
            center = dips[0].t_start
            t0 = max(0.0, center - window / 2)
            t1 = min(report.time_s, t0 + window)
        else:
            t0, t1 = 0.0, report.time_s
        times, watts = report.rapl.power_trace((t1 - t0) / 256, t_end=t1)
        sel = times >= t0
        print(f"\n=== {name}  (window {t0*1e3:.2f}-{t1*1e3:.2f} ms) ===")
        print(ascii_trace(times[sel], watts[sel]))
        print(
            f"compute plateau {compute_w:.0f} W; reconstruction window "
            f"{recon_w:.0f} W ({recon_w / compute_w:.2f}x); "
            f"energy {report.energy_j:.1f} J; "
            f"DVFS transitions: {report.details['dvfs_transitions']}"
        )

    print(
        "\nThe LI-DVFS dip is the Section-4.2 schedule: the reconstructing "
        "core stays at 2.3 GHz while the other 23 drop to 1.2 GHz."
    )


if __name__ == "__main__":
    main()
