#!/usr/bin/env python
"""Compare every Table-2 recovery scheme on one workload.

Reproduces the paper's core experiment at example scale: one matrix, ten
evenly spaced node failures, every recovery scheme, everything
normalized to the fault-free run — then answers "which scheme would you
pick?" for each optimization target (time, power, energy), as in
Section 5.3's discussion of Figure 8.

Run:  python examples/compare_recovery_schemes.py [matrix-name]
"""

import sys

from repro import scheme_names
from repro.harness import Experiment, ExperimentConfig, normalize_reports
from repro.harness.reporting import format_table
from repro.matrices import suite


def main(matrix: str = "cvxbqp1") -> None:
    if matrix not in suite.names():
        raise SystemExit(
            f"unknown matrix {matrix!r}; pick one of: {', '.join(suite.names())}"
        )
    print(f"matrix: {matrix}  (suite stand-in, {suite.build(matrix).shape[0]} rows)")

    exp = Experiment(
        ExperimentConfig(
            matrix=matrix, nranks=64, n_faults=10, cr_interval="young"
        )
    )
    schemes = [s for s in scheme_names() if s not in ("LI-LU", "LSI-QR")]
    reports = {"FF": exp.fault_free, **exp.run_all(schemes)}
    norm = normalize_reports(reports)

    rows = [
        [name, m.iterations, m.time, m.power, m.energy]
        for name, m in norm.items()
    ]
    print(
        format_table(
            ["scheme", "iters", "time", "power", "energy"],
            rows,
            title="normalized to the fault-free run (10 faults, 64 ranks)",
            precision=2,
        )
    )

    recovery = {k: v for k, v in norm.items() if k != "FF"}
    print("\nbest scheme per optimization target:")
    for target in ("time", "power", "energy"):
        best = min(recovery, key=lambda s: getattr(recovery[s], target))
        print(f"  {target:<7} -> {best} ({getattr(recovery[best], target):.2f}x)")
    print(
        "\n(the winner changes with the matrix — try "
        "`python examples/compare_recovery_schemes.py x104`)"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
