#!/usr/bin/env python
"""Adaptive scheme selection under a power budget.

The paper's closing recommendation: "resilience techniques should be
adaptively adjusted to a given fault rate, system size, and power
budget."  This example walks a machine through its lifetime — growing
system size, shrinking MTBF, and a fixed facility power budget — and
asks the model-driven :class:`SchemeAdvisor` which recovery scheme to
deploy at each stage and for each objective.

Run:  python examples/adaptive_scheme_selection.py
"""

from repro.core.advisor import Objective, SchemeAdvisor, Situation
from repro.core.models.projection import PER_PROC_MTBF_S


def situation_at(n_cores: int, budget_w: float | None) -> Situation:
    """Weak-scaled operating point at ``n_cores`` (per-proc MTBF 6K h,
    recovery costs growing like Section 6's measured trends)."""
    n0 = 192
    return Situation(
        t_solve_s=600.0,
        p1_w=10.0,
        n_cores=n_cores,
        rate_per_s=n_cores / PER_PROC_MTBF_S,
        t_overhead_s=0.05 * n_cores.bit_length() + 2e-5 * n_cores,
        power_budget_w=budget_w,
        t_c_disk_s=0.2 * n_cores / n0,
        t_c_mem_s=0.02,
        t_const_s=0.1 * n_cores / n0,
        extra_fraction=0.04,
    )


def main() -> None:
    sizes = [192, 3072, 12_288, 49_152, 98_304]
    # facility budget: 1.6x the execution power of the largest machine —
    # enough for DVFS'd recovery everywhere, never enough for TMR, and
    # enough for DMR only while the machine is small.
    budget_w = 1.6 * 10.0 * sizes[-1]

    print(f"facility power budget: {budget_w/1000:.0f} kW\n")
    header = f"{'cores':>8s} {'MTBF':>9s} | {'min time':>10s} {'min energy':>12s} {'min power':>10s}"
    print(header)
    print("-" * len(header))
    for n in sizes:
        sit = situation_at(n, budget_w)
        adv = SchemeAdvisor(sit)
        row = []
        for objective in (Objective.TIME, Objective.ENERGY, Objective.POWER):
            try:
                best = adv.recommend(objective)
                row.append(best.scheme)
            except RuntimeError:
                row.append("none!")
        mtbf_min = sit.rate_per_s and (1.0 / sit.rate_per_s) / 60.0
        print(
            f"{n:8d} {mtbf_min:7.1f}m | {row[0]:>10s} {row[1]:>12s} {row[2]:>10s}"
        )

    print(
        "\nReading: while the machine is small, redundancy's zero time "
        "overhead makes it the time-optimal pick — until the power budget "
        "cuts it off; energy-optimal switches between forward recovery "
        "and memory checkpointing as the fault rate climbs; and when the "
        "projection says a scheme would stop making progress, the advisor "
        "drops it from the feasible set."
    )

    # unconstrained comparison at one size, full detail
    print("\nfull ranking at 49,152 cores (energy objective, no budget):")
    for est in SchemeAdvisor(situation_at(49_152, None)).rank(Objective.ENERGY):
        status = "ok" if est.feasible else (est.note or "halted")
        print(
            f"  {est.scheme:8s} T={est.total_time_s:9.1f}s "
            f"E={est.total_energy_j/1e6:8.2f} MJ "
            f"P_avg={est.avg_power_w/1000:7.1f} kW  [{status}]"
        )


if __name__ == "__main__":
    main()
