#!/usr/bin/env python
"""Quickstart: solve a sparse SPD system under faults with energy-aware
forward recovery.

Builds a Table-3 suite matrix, injects 5 node failures evenly over the
run, recovers each with the paper's optimized LI-DVFS scheme (local CG
construction + DVFS power management), and prints the time / power /
energy breakdown next to a fault-free baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ResilientSolver, SolverConfig, make_scheme
from repro.faults import EvenlySpacedSchedule
from repro.matrices import suite


def main() -> None:
    # 1. A problem: the crystm02 stand-in (banded SPD, ~2.4k rows).
    a = suite.build("crystm02")
    n = a.shape[0]
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(n)
    b = a @ x_true

    config = SolverConfig(nranks=64)  # 64 MPI ranks on the simulated cluster

    # 2. Fault-free baseline.
    ff = ResilientSolver(a, b, config=config).solve()
    print("=== fault-free baseline ===")
    print(ff.summary())

    # 3. The same solve with 5 node failures and LI-DVFS recovery.
    faulty = ResilientSolver(
        a,
        b,
        scheme=make_scheme("LI-DVFS"),
        schedule=EvenlySpacedSchedule(n_faults=5),
        config=SolverConfig(nranks=64, baseline_iters=ff.iterations),
    ).solve()
    print("\n=== 5 faults, LI-DVFS recovery ===")
    print(faulty.summary())

    # 4. Normalized comparison (how the paper reports results).
    print("\n=== overheads relative to fault-free ===")
    print(f"iterations: {faulty.normalized_iterations(ff):.2f}x")
    print(f"time:       {faulty.normalized_time(ff):.2f}x")
    print(f"energy:     {faulty.normalized_energy(ff):.2f}x")
    print(f"avg power:  {faulty.normalized_power(ff):.2f}x")

    # 5. The recovered solution is a genuine solution.
    assert faulty.converged
    print(f"\nconverged to relative residual {faulty.final_relative_residual:.2e}")


if __name__ == "__main__":
    main()
